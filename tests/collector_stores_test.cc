// Collector store tests: these drive the stores through the *real* write
// path (translator engines -> RoCE frames -> NIC -> registered memory)
// rather than poking memory directly, so they validate the write/read
// contract between translator and collector.
#include <gtest/gtest.h>

#include "collector/rdma_service.h"
#include "translator/append_engine.h"
#include "translator/keyincrement_engine.h"
#include "translator/keywrite_engine.h"
#include "translator/postcard_cache.h"
#include "translator/rdma_crafter.h"

namespace dta::collector {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;
using translator::RdmaOp;

TelemetryKey key_of(std::uint32_t id) {
  Bytes b;
  common::put_u32(b, id);
  return TelemetryKey::from(ByteSpan(b));
}

// Shared rig: a service with every primitive enabled, engines configured
// from the CM accept, and a crafter whose frames are fed to the NIC.
class StoreRig {
 public:
  StoreRig() {
    KeyWriteSetup kw;
    kw.num_slots = 1 << 16;
    kw.value_bytes = 4;
    service.enable_keywrite(kw);

    PostcardingSetup pc;
    pc.num_chunks = 1 << 14;
    pc.hops = 5;
    for (std::uint32_t v = 0; v < 4096; ++v) pc.value_space.push_back(v);
    service.enable_postcarding(pc);

    AppendSetup ap;
    ap.num_lists = 4;
    ap.entries_per_list = 64;
    ap.entry_bytes = 4;
    service.enable_append(ap);

    KeyIncrementSetup ki;
    ki.num_slots = 1 << 12;
    service.enable_keyincrement(ki);

    rdma::ConnectRequest req;
    req.start_psn = 100;
    accept = service.accept(req);

    for (const auto& region : accept.regions) {
      switch (region.kind) {
        case rdma::RegionKind::kKeyWrite:
          kw_geo.base_va = region.base_va;
          kw_geo.rkey = region.rkey;
          kw_geo.value_bytes = (region.param1 & 0xFFFF) - 4;
          kw_geo.num_slots = region.param2;
          break;
        case rdma::RegionKind::kPostcarding:
          pc_geo.base_va = region.base_va;
          pc_geo.rkey = region.rkey;
          pc_geo.hops = static_cast<std::uint8_t>(region.param1 >> 16);
          pc_geo.num_chunks = region.param2;
          break;
        case rdma::RegionKind::kAppend:
          ap_geo.base_va = region.base_va;
          ap_geo.rkey = region.rkey;
          ap_geo.entry_bytes = region.param1;
          ap_geo.entries_per_list = region.param2 & 0xFFFFFFFFull;
          ap_geo.num_lists = static_cast<std::uint32_t>(region.param2 >> 32);
          break;
        case rdma::RegionKind::kKeyIncrement:
          ki_geo.base_va = region.base_va;
          ki_geo.rkey = region.rkey;
          ki_geo.num_slots = region.param2;
          break;
      }
    }
    crafter = std::make_unique<translator::RdmaCrafter>(
        translator::CrafterEndpoints{}, accept.responder_qpn,
        accept.start_psn);
  }

  void deliver(std::vector<RdmaOp>& ops) {
    for (auto& op : ops) {
      net::Packet frame = crafter->craft(op);
      auto out = service.nic().ingest(frame);
      ASSERT_TRUE(out);
      ASSERT_TRUE(out->responder.executed)
          << "verb did not execute (psn/rkey mismatch?)";
    }
    ops.clear();
  }

  RdmaService service;
  rdma::ConnectAccept accept;
  translator::KeyWriteGeometry kw_geo;
  translator::PostcardingGeometry pc_geo;
  translator::AppendGeometry ap_geo;
  translator::KeyIncrementGeometry ki_geo;
  std::unique_ptr<translator::RdmaCrafter> crafter;
};

// ------------------------------------------------------------ Key-Write

class KeyWriteStoreTest : public ::testing::Test {
 protected:
  void write(std::uint32_t id, std::uint32_t value, std::uint8_t n = 2) {
    translator::KeyWriteEngine engine(rig_.kw_geo);
    proto::KeyWriteReport r;
    r.key = key_of(id);
    r.redundancy = n;
    common::put_u32(r.data, value);
    std::vector<RdmaOp> ops;
    engine.translate(r, false, ops);
    rig_.deliver(ops);
  }

  std::optional<std::uint32_t> read(std::uint32_t id, std::uint8_t n = 2) {
    auto result = rig_.service.keywrite()->query(key_of(id), n);
    if (result.status != QueryStatus::kHit) return std::nullopt;
    return common::load_u32(result.value.data());
  }

  StoreRig rig_;
};

TEST_F(KeyWriteStoreTest, WriteThenQuery) {
  write(1, 0xCAFE);
  auto v = read(1);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 0xCAFEu);
}

TEST_F(KeyWriteStoreTest, UnwrittenKeyNotFound) {
  write(1, 10);
  EXPECT_EQ(rig_.service.keywrite()->query(key_of(999), 2).status,
            QueryStatus::kNotFound);
}

TEST_F(KeyWriteStoreTest, LatestWriteWins) {
  write(1, 10);
  write(1, 20);
  auto v = read(1);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 20u);
}

TEST_F(KeyWriteStoreTest, ManyKeysAllQueryable) {
  for (std::uint32_t i = 0; i < 500; ++i) write(i, i * 3 + 1);
  int hits = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    auto v = read(i);
    if (v && *v == i * 3 + 1) ++hits;
  }
  // Load factor 500/65536: essentially everything must survive.
  EXPECT_GE(hits, 498);
}

TEST_F(KeyWriteStoreTest, VotesReportedWithRedundancy) {
  write(5, 77, 4);
  auto result = rig_.service.keywrite()->query(key_of(5), 4);
  ASSERT_EQ(result.status, QueryStatus::kHit);
  // At least 3 of 4 replicas must agree (two hash functions may map this
  // key to the same physical slot, which contributes a single vote).
  EXPECT_GE(result.votes, 3);
  EXPECT_LE(result.votes, 4);
}

TEST_F(KeyWriteStoreTest, ConsensusThresholdRejectsSingleVote) {
  write(5, 77, 1);  // only one replica written
  auto strict = rig_.service.keywrite()->query(key_of(5), 4,
                                               /*consensus_threshold=*/2);
  EXPECT_NE(strict.status, QueryStatus::kHit);
  auto lax = rig_.service.keywrite()->query(key_of(5), 4, 1);
  EXPECT_EQ(lax.status, QueryStatus::kHit);
}

TEST_F(KeyWriteStoreTest, QueryWithHigherNThanWritten) {
  // The collector "can assume by default a maximum redundancy" (§4):
  // querying N=4 for a key written with N=2 must still succeed.
  write(9, 123, 2);
  auto v = read(9, 4);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 123u);
}

// ---------------------------------------------------------- Postcarding

class PostcardingStoreTest : public ::testing::Test {
 protected:
  void write_path(std::uint32_t flow, const std::vector<std::uint32_t>& path,
                  std::uint8_t n = 1) {
    translator::PostcardCache cache(rig_.pc_geo, 4096);
    std::vector<RdmaOp> ops;
    for (std::uint8_t hop = 0; hop < path.size(); ++hop) {
      proto::PostcardReport r;
      r.key = key_of(flow);
      r.hop = hop;
      r.path_len = static_cast<std::uint8_t>(path.size());
      r.redundancy = n;
      r.value = path[hop];
      cache.ingest(r, ops);
    }
    rig_.deliver(ops);
  }

  StoreRig rig_;
};

TEST_F(PostcardingStoreTest, FullPathRoundTrip) {
  write_path(1, {10, 20, 30, 40, 50});
  auto result = rig_.service.postcarding()->query(key_of(1), 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values, (std::vector<std::uint32_t>{10, 20, 30, 40, 50}));
}

TEST_F(PostcardingStoreTest, ShortPathRoundTrip) {
  write_path(2, {7, 8});
  auto result = rig_.service.postcarding()->query(key_of(2), 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values, (std::vector<std::uint32_t>{7, 8}));
}

TEST_F(PostcardingStoreTest, UnwrittenFlowNotFound) {
  write_path(1, {1, 2, 3, 4, 5});
  EXPECT_FALSE(rig_.service.postcarding()->query(key_of(777), 1).found);
}

TEST_F(PostcardingStoreTest, RedundantChunksAgree) {
  write_path(3, {100, 200, 300, 400, 500}, 2);
  auto result = rig_.service.postcarding()->query(key_of(3), 2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values.size(), 5u);
}

TEST_F(PostcardingStoreTest, ManyFlowsQueryable) {
  for (std::uint32_t f = 0; f < 200; ++f) {
    write_path(f, {f % 4096, (f + 1) % 4096, (f + 2) % 4096,
                   (f + 3) % 4096, (f + 4) % 4096});
  }
  int found = 0;
  for (std::uint32_t f = 0; f < 200; ++f) {
    auto r = rig_.service.postcarding()->query(key_of(f), 1);
    if (r.found && r.hop_values[0] == f % 4096) ++found;
  }
  EXPECT_GE(found, 198);  // load factor 200/16K: near-perfect recall
}

TEST_F(PostcardingStoreTest, ValueOutsideSpaceInvalidatesChunk) {
  // Values not in V cannot be decoded: the chunk is invalid, the query
  // empty — never a wrong answer.
  write_path(4, {999999, 1, 2, 3, 4});  // 999999 not in value space
  auto result = rig_.service.postcarding()->query(key_of(4), 1);
  EXPECT_FALSE(result.found);
}

// ---------------------------------------------------------------- Append

class AppendStoreTest : public ::testing::Test {
 protected:
  void append(std::uint32_t list, std::uint32_t value,
              std::uint32_t batch = 4) {
    if (!engine_ || engine_->batch_size() != batch) {
      engine_ =
          std::make_unique<translator::AppendEngine>(rig_.ap_geo, batch);
    }
    proto::AppendReport r;
    r.list_id = list;
    r.entry_size = 4;
    Bytes e;
    common::put_u32(e, value);
    r.entries.push_back(std::move(e));
    std::vector<RdmaOp> ops;
    engine_->ingest(r, false, ops);
    rig_.deliver(ops);
  }

  StoreRig rig_;
  std::unique_ptr<translator::AppendEngine> engine_;
};

TEST_F(AppendStoreTest, PollReadsInOrder) {
  for (std::uint32_t i = 0; i < 8; ++i) append(0, 100 + i);
  AppendStore* store = rig_.service.append();
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(common::load_u32(store->poll(0).data()), 100 + i);
  }
  EXPECT_EQ(store->polled(), 8u);
}

TEST_F(AppendStoreTest, ListsIsolated) {
  for (std::uint32_t i = 0; i < 4; ++i) append(1, 10 + i);
  for (std::uint32_t i = 0; i < 4; ++i) append(2, 90 + i);
  AppendStore* store = rig_.service.append();
  EXPECT_EQ(common::load_u32(store->poll(1).data()), 10u);
  EXPECT_EQ(common::load_u32(store->poll(2).data()), 90u);
}

TEST_F(AppendStoreTest, TailWrapsWithRing) {
  AppendStore* store = rig_.service.append();
  // Fill the 64-entry list exactly once: head wraps to 0.
  for (std::uint32_t i = 0; i < 64; ++i) append(0, i);
  store->set_tail(0, 60);
  EXPECT_EQ(common::load_u32(store->poll(0).data()), 60u);
  store->poll(0);
  store->poll(0);
  store->poll(0);
  EXPECT_EQ(store->tail(0), 0u);  // rolled back to start
}

TEST_F(AppendStoreTest, AvailableAccountsForWrap) {
  AppendStore* store = rig_.service.append();
  store->set_tail(0, 60);
  EXPECT_EQ(store->available(0, 62), 2u);
  EXPECT_EQ(store->available(0, 4), 8u);  // wrapped head
}

// --------------------------------------------------------- Key-Increment

class KeyIncrementStoreTest : public ::testing::Test {
 protected:
  void bump(std::uint32_t id, std::uint64_t delta, std::uint8_t n = 2) {
    translator::KeyIncrementEngine engine(rig_.ki_geo);
    proto::KeyIncrementReport r;
    r.key = key_of(id);
    r.redundancy = n;
    r.counter = delta;
    std::vector<RdmaOp> ops;
    engine.translate(r, ops);
    rig_.deliver(ops);
  }

  StoreRig rig_;
};

TEST_F(KeyIncrementStoreTest, IncrementsAccumulate) {
  bump(1, 5);
  bump(1, 7);
  EXPECT_EQ(rig_.service.keyincrement()->query(key_of(1), 2), 12u);
}

TEST_F(KeyIncrementStoreTest, UnwrittenKeyIsZero) {
  bump(1, 5);
  // An untouched key reads 0 unless all its slots collide.
  EXPECT_EQ(rig_.service.keyincrement()->query(key_of(4242), 2), 0u);
}

TEST_F(KeyIncrementStoreTest, CmsNeverUnderestimates) {
  // Count-min property: estimates are always >= the true count.
  std::vector<std::uint64_t> truth(64, 0);
  for (std::uint32_t round = 0; round < 10; ++round) {
    for (std::uint32_t id = 0; id < 64; ++id) {
      bump(id, id % 5 + 1);
      truth[id] += id % 5 + 1;
    }
  }
  for (std::uint32_t id = 0; id < 64; ++id) {
    EXPECT_GE(rig_.service.keyincrement()->query(key_of(id), 2), truth[id]);
  }
}

TEST_F(KeyIncrementStoreTest, ResetZeroesCounters) {
  bump(1, 100);
  rig_.service.keyincrement()->reset();
  EXPECT_EQ(rig_.service.keyincrement()->query(key_of(1), 2), 0u);
}

}  // namespace
}  // namespace dta::collector

// Sharded collector runtime tests: routing stability, cross-shard query
// merge, batch/shutdown flushing, and equivalence of a 1-shard runtime
// with the unsharded store path.
#include <gtest/gtest.h>

#include <set>

#include "collector/runtime.h"
#include "common/crc.h"
#include "translator/keywrite_engine.h"
#include "translator/rdma_crafter.h"

namespace dta::collector {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint32_t id) {
  Bytes b;
  common::put_u32(b, id);
  return TelemetryKey::from(ByteSpan(b));
}

proto::ParsedDta keywrite_report(std::uint32_t id, std::uint32_t value,
                                 std::uint8_t redundancy = 2) {
  proto::KeyWriteReport r;
  r.key = key_of(id);
  r.redundancy = redundancy;
  common::put_u32(r.data, value);
  return {proto::DtaHeader{}, std::move(r)};
}

proto::ParsedDta keyincrement_report(std::uint32_t id, std::uint64_t delta) {
  proto::KeyIncrementReport r;
  r.key = key_of(id);
  r.redundancy = 2;
  r.counter = delta;
  return {proto::DtaHeader{}, std::move(r)};
}

proto::ParsedDta append_report(std::uint32_t list, std::uint32_t value) {
  proto::AppendReport r;
  r.list_id = list;
  r.entry_size = 4;
  Bytes e;
  common::put_u32(e, value);
  r.entries.push_back(std::move(e));
  return {proto::DtaHeader{}, std::move(r)};
}

CollectorRuntimeConfig small_config(std::uint32_t shards,
                                    ThreadMode mode = ThreadMode::kInline) {
  CollectorRuntimeConfig config;
  config.num_shards = shards;
  config.thread_mode = mode;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.keywrite = kw;
  KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 64;
  ap.entry_bytes = 4;
  config.append = ap;
  PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 4096; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  return config;
}

// ------------------------------------------------------------- routing

TEST(ShardRouting, KeyRoutingIsStable) {
  for (std::uint32_t id = 0; id < 1000; ++id) {
    const TelemetryKey key = key_of(id);
    const std::uint32_t first = shard_for_key(key, 4);
    EXPECT_EQ(shard_for_key(key, 4), first);
    EXPECT_LT(first, 4u);
  }
}

TEST(ShardRouting, AllPrimitivesOfOneKeyShareAShard) {
  // Key-Write, Key-Increment and Postcarding reports for the same key
  // must land on the same shard or cross-shard queries would miss.
  CollectorRuntime runtime(small_config(4));
  for (std::uint32_t id = 0; id < 100; ++id) {
    proto::PostcardReport pc;
    pc.key = key_of(id);
    const std::uint32_t kw_shard =
        runtime.shard_index_for(keywrite_report(id, 1));
    EXPECT_EQ(runtime.shard_index_for(keyincrement_report(id, 1)), kw_shard);
    EXPECT_EQ(runtime.shard_index_for({proto::DtaHeader{}, pc}), kw_shard);
  }
}

TEST(ShardRouting, KeysSpreadAcrossShards) {
  std::array<std::uint32_t, 8> hits{};
  for (std::uint32_t id = 0; id < 8000; ++id) {
    ++hits[common::shard_of(key_of(id).span(), 8)];
  }
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    // Uniform expectation 1000 per shard; CRC routing must stay within
    // a loose 2x band.
    EXPECT_GT(hits[shard], 500u) << "shard " << shard << " starved";
    EXPECT_LT(hits[shard], 2000u) << "shard " << shard << " overloaded";
  }
}

TEST(ShardRouting, ShardSelectorIndependentOfSlotHashes) {
  // The shard selector must not be correlated with h0(0, .): keys that
  // collide on the first slot hash should still spread over shards.
  std::set<std::uint32_t> shards_seen;
  for (std::uint32_t id = 0; id < 64; ++id) {
    shards_seen.insert(common::shard_of(key_of(id * 8).span(), 8));
  }
  EXPECT_GT(shards_seen.size(), 4u);
}

// ------------------------------------------------- cross-shard queries

TEST(CollectorRuntimeTest, CrossShardKeyWriteMerge) {
  CollectorRuntime runtime(small_config(4));
  for (std::uint32_t id = 0; id < 500; ++id) {
    runtime.submit(keywrite_report(id, id * 7 + 3));
  }
  runtime.flush();
  int hits = 0;
  for (std::uint32_t id = 0; id < 500; ++id) {
    auto value = runtime.query().value_of(key_of(id), 2);
    if (value && common::load_u32(value->data()) == id * 7 + 3) ++hits;
  }
  EXPECT_GE(hits, 498);
}

TEST(CollectorRuntimeTest, CountersRouteToOwningShard) {
  CollectorRuntime runtime(small_config(4));
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t id = 0; id < 64; ++id) {
      runtime.submit(keyincrement_report(id, id + 1));
    }
  }
  runtime.flush();
  // CMS property must survive sharding: estimates never underestimate.
  for (std::uint32_t id = 0; id < 64; ++id) {
    proto::KeyIncrementReport probe;
    probe.key = key_of(id);
    RdmaService* owner =
        &runtime.shard(shard_for_key(probe.key, runtime.num_shards()))
             .service();
    EXPECT_GE(owner->keyincrement()->query(probe.key, 2), 3u * (id + 1));
  }
}

TEST(CollectorRuntimeTest, AppendListsRouteAndDrainAcrossShards) {
  CollectorRuntime runtime(small_config(4));
  for (std::uint32_t list = 0; list < 8; ++list) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      runtime.submit(append_report(list, list * 100 + i));
    }
  }
  runtime.flush();
  for (std::uint32_t list = 0; list < 8; ++list) {
    std::vector<std::uint32_t> drained;
    runtime.query().consume_events(list, 4, [&](ByteSpan entry) {
      drained.push_back(common::load_u32(entry.data()));
    });
    ASSERT_EQ(drained.size(), 4u) << "list " << list;
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(drained[i], list * 100 + i) << "list " << list;
    }
  }
}

TEST(CollectorRuntimeTest, PostcardPathsRecoverableAcrossShards) {
  CollectorRuntime runtime(small_config(4));
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    for (std::uint8_t hop = 0; hop < 5; ++hop) {
      proto::PostcardReport pc;
      pc.key = key_of(flow);
      pc.hop = hop;
      pc.path_len = 5;
      pc.redundancy = 1;
      pc.value = (flow + hop) % 4096;
      runtime.submit({proto::DtaHeader{}, pc});
    }
  }
  runtime.flush();
  int found = 0;
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    RdmaService& owner =
        runtime.shard(shard_for_key(key_of(flow), runtime.num_shards()))
            .service();
    auto result = owner.postcarding()->query(key_of(flow), 1);
    if (result.found && result.hop_values.size() == 5 &&
        result.hop_values[0] == flow % 4096) {
      ++found;
    }
  }
  EXPECT_GE(found, 98);
}

// ------------------------------------------------------ flush/shutdown

TEST(CollectorRuntimeTest, BatchFlushOnShutdown) {
  auto config = small_config(2);
  config.op_batch_size = 64;  // far more than we submit: nothing
                              // reaches the NIC until a flush
  auto runtime = std::make_unique<CollectorRuntime>(config);
  for (std::uint32_t id = 0; id < 8; ++id) {
    runtime->submit(keywrite_report(id, id + 1));
  }
  EXPECT_LT(runtime->stats().verbs_executed, 16u);
  runtime->stop();  // shutdown must deliver the partial batches
  EXPECT_EQ(runtime->stats().verbs_executed, 16u);  // 8 reports x N=2
  for (std::uint32_t id = 0; id < 8; ++id) {
    auto value = runtime->query().value_of(key_of(id), 2);
    ASSERT_TRUE(value) << "key " << id << " lost at shutdown";
    EXPECT_EQ(common::load_u32(value->data()), id + 1);
  }
}

TEST(CollectorRuntimeTest, FlushAlsoDrainsAppendBatches) {
  auto config = small_config(2);
  config.append_batch_size = 16;  // entries stay in the engine registers
  CollectorRuntime runtime(config);
  for (std::uint32_t i = 0; i < 5; ++i) {
    runtime.submit(append_report(3, 40 + i));
  }
  runtime.flush();
  std::vector<std::uint32_t> drained;
  runtime.query().consume_events(3, 5, [&](ByteSpan entry) {
    drained.push_back(common::load_u32(entry.data()));
  });
  EXPECT_EQ(drained, (std::vector<std::uint32_t>{40, 41, 42, 43, 44}));
}

TEST(CollectorRuntimeTest, FlushAndSubmitAfterStopAreSafe) {
  // stop() joins the workers; later flush()/submit() must fall back to
  // the caller thread instead of waiting on (or enqueueing for) workers
  // that no longer exist.
  CollectorRuntime runtime(small_config(2, ThreadMode::kThreaded));
  runtime.submit(keywrite_report(1, 11));
  runtime.stop();
  runtime.flush();  // must not hang
  runtime.submit(keywrite_report(2, 22));
  runtime.flush();
  for (std::uint32_t id : {1u, 2u}) {
    auto value = runtime.query().value_of(key_of(id), 2);
    ASSERT_TRUE(value) << "key " << id;
    EXPECT_EQ(common::load_u32(value->data()), id * 11);
  }
}

TEST(CollectorRuntimeTest, ThreadedPipelineMatchesInline) {
  auto threaded_config = small_config(4, ThreadMode::kThreaded);
  CollectorRuntime runtime(threaded_config);
  EXPECT_TRUE(runtime.pipeline().threaded());
  for (std::uint32_t id = 0; id < 300; ++id) {
    runtime.submit(keywrite_report(id, id ^ 0xA5A5));
    runtime.submit(keyincrement_report(id % 32, 1));
  }
  runtime.flush();
  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    auto value = runtime.query().value_of(key_of(id), 2);
    if (value && common::load_u32(value->data()) == (id ^ 0xA5A5)) ++hits;
  }
  EXPECT_GE(hits, 298);
  EXPECT_EQ(runtime.stats().reports_in, 600u);
  runtime.stop();
}

// ------------------------------------------- single-shard equivalence

TEST(CollectorRuntimeTest, SingleShardMatchesUnshardedStore) {
  // The same reports through (a) a 1-shard runtime and (b) the raw
  // unsharded engine->crafter->NIC path must produce byte-identical
  // Key-Write store memory.
  auto config = small_config(1);
  config.op_batch_size = 4;
  CollectorRuntime runtime(config);

  RdmaService unsharded;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  unsharded.enable_keywrite(kw);
  rdma::ConnectRequest req;
  req.requester_qpn = 0x70;
  req.start_psn = 0x1000;
  const rdma::ConnectAccept accept = unsharded.accept(req);
  translator::KeyWriteGeometry geo;
  for (const auto& region : accept.regions) {
    if (region.kind != rdma::RegionKind::kKeyWrite) continue;
    geo.base_va = region.base_va;
    geo.rkey = region.rkey;
    geo.value_bytes = (region.param1 & 0xFFFF) - 4;
    geo.num_slots = region.param2;
  }
  translator::KeyWriteEngine engine(geo);
  translator::RdmaCrafter crafter(translator::CrafterEndpoints{},
                                  accept.responder_qpn, accept.start_psn);

  for (std::uint32_t id = 0; id < 200; ++id) {
    const auto parsed = keywrite_report(id, id * 13 + 7);
    runtime.submit(parsed);
    std::vector<translator::RdmaOp> ops;
    engine.translate(std::get<proto::KeyWriteReport>(parsed.report), false,
                     ops);
    for (auto& op : ops) {
      net::Packet frame = crafter.craft(op);
      auto out = unsharded.nic().ingest(frame);
      ASSERT_TRUE(out && out->responder.executed);
    }
  }
  runtime.flush();

  const rdma::MemoryRegion* sharded_region =
      runtime.shard(0).service().keywrite_region();
  const rdma::MemoryRegion* unsharded_region = unsharded.keywrite_region();
  ASSERT_EQ(sharded_region->length(), unsharded_region->length());
  EXPECT_EQ(std::memcmp(sharded_region->data(), unsharded_region->data(),
                        sharded_region->length()),
            0)
      << "1-shard runtime diverged from the unsharded write path";

  // And the query answers agree.
  for (std::uint32_t id = 0; id < 200; ++id) {
    auto via_runtime = runtime.query().value_of(key_of(id), 2);
    auto direct = unsharded.keywrite()->query(key_of(id), 2);
    ASSERT_EQ(via_runtime.has_value(), direct.status == QueryStatus::kHit);
    if (via_runtime) {
      EXPECT_EQ(common::load_u32(via_runtime->data()),
                common::load_u32(direct.value.data()));
    }
  }
}

}  // namespace
}  // namespace dta::collector

// Sharded collector runtime tests, driven through the dta::Client
// facade (LocalBackend): routing stability, cross-shard query merge,
// batch/shutdown flushing, and equivalence of a 1-shard runtime with
// the unsharded store path. Reports are built by the shared typed
// builders (dta/report_builders.h); internals (shard stats, store
// memory) are reached through Client::local_runtime().
#include <gtest/gtest.h>

#include <set>

#include "collector/runtime.h"
#include "common/crc.h"
#include "dta/report_builders.h"
#include "dtalib/client.h"
#include "translator/keywrite_engine.h"
#include "translator/rdma_crafter.h"

namespace dta::collector {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;
using reports::u32_key;

CollectorRuntimeConfig small_config(std::uint32_t shards,
                                    ThreadMode mode = ThreadMode::kInline) {
  CollectorRuntimeConfig config;
  config.num_shards = shards;
  config.thread_mode = mode;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.keywrite = kw;
  KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 64;
  ap.entry_bytes = 4;
  config.append = ap;
  PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 4096; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  return config;
}

// ------------------------------------------------------------- routing

TEST(ShardRouting, KeyRoutingIsStable) {
  for (std::uint32_t id = 0; id < 1000; ++id) {
    const TelemetryKey key = u32_key(id);
    const std::uint32_t first = shard_for_key(key, 4);
    EXPECT_EQ(shard_for_key(key, 4), first);
    EXPECT_LT(first, 4u);
  }
}

TEST(ShardRouting, AllPrimitivesOfOneKeyShareAShard) {
  // Key-Write, Key-Increment and Postcarding reports for the same key
  // must land on the same shard or cross-shard queries would miss.
  Client client = Client::local(small_config(4));
  CollectorRuntime& runtime = *client.local_runtime();
  for (std::uint32_t id = 0; id < 100; ++id) {
    const auto keywrite = reports::keywrite_u32(u32_key(id), 1);
    const auto counter = reports::keyincrement(u32_key(id), 1);
    const auto postcard = reports::postcard(u32_key(id), 0, 5, 1);
    const std::uint32_t kw_shard = runtime.shard_index_for(keywrite);
    EXPECT_EQ(runtime.shard_index_for(counter), kw_shard);
    EXPECT_EQ(runtime.shard_index_for(postcard), kw_shard);
  }
}

TEST(ShardRouting, KeysSpreadAcrossShards) {
  std::array<std::uint32_t, 8> hits{};
  for (std::uint32_t id = 0; id < 8000; ++id) {
    ++hits[common::shard_of(u32_key(id).span(), 8)];
  }
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    // Uniform expectation 1000 per shard; CRC routing must stay within
    // a loose 2x band.
    EXPECT_GT(hits[shard], 500u) << "shard " << shard << " starved";
    EXPECT_LT(hits[shard], 2000u) << "shard " << shard << " overloaded";
  }
}

TEST(ShardRouting, ShardSelectorIndependentOfSlotHashes) {
  // The shard selector must not be correlated with h0(0, .): keys that
  // collide on the first slot hash should still spread over shards.
  std::set<std::uint32_t> shards_seen;
  for (std::uint32_t id = 0; id < 64; ++id) {
    shards_seen.insert(common::shard_of(u32_key(id * 8).span(), 8));
  }
  EXPECT_GT(shards_seen.size(), 4u);
}

// ------------------------------------------------- cross-shard queries

TEST(CollectorRuntimeTest, CrossShardKeyWriteMerge) {
  Client client = Client::local(small_config(4));
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 500; ++id) {
    ASSERT_TRUE(table.put_u32(u32_key(id), id * 7 + 3).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  int hits = 0;
  for (std::uint32_t id = 0; id < 500; ++id) {
    const auto value = table.get_u32(u32_key(id));
    if (value.ok() && *value == id * 7 + 3) ++hits;
  }
  EXPECT_GE(hits, 498);
}

TEST(CollectorRuntimeTest, CountersRouteToOwningShard) {
  Client client = Client::local(small_config(4));
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t id = 0; id < 64; ++id) {
      ASSERT_TRUE(client.counters().add(u32_key(id), id + 1).ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  // CMS property must survive sharding: estimates never underestimate —
  // through the facade and on the owning shard's live store alike.
  CollectorRuntime& runtime = *client.local_runtime();
  for (std::uint32_t id = 0; id < 64; ++id) {
    const auto estimate = client.counters().get(u32_key(id));
    ASSERT_TRUE(estimate.ok());
    EXPECT_GE(*estimate, 3u * (id + 1));
    RdmaService* owner =
        &runtime.shard(shard_for_key(u32_key(id), runtime.num_shards()))
             .service();
    EXPECT_GE(owner->keyincrement()->query(u32_key(id), 2), 3u * (id + 1));
  }
}

TEST(CollectorRuntimeTest, AppendListsRouteAndDrainAcrossShards) {
  Client client = Client::local(small_config(4));
  for (std::uint32_t list = 0; list < 8; ++list) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(client.list(list).append_u32(list * 100 + i).ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  for (std::uint32_t list = 0; list < 8; ++list) {
    const auto events = client.events(list).max(4).run();
    ASSERT_TRUE(events.ok()) << "list " << list;
    ASSERT_EQ(events->entries.size(), 4u) << "list " << list;
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(common::load_u32(events->entries[i].data()), list * 100 + i)
          << "list " << list;
    }
  }
}

TEST(CollectorRuntimeTest, PostcardPathsRecoverableAcrossShards) {
  Client client = Client::local(small_config(4));
  auto postcards = client.postcards();
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    for (std::uint8_t hop = 0; hop < 5; ++hop) {
      const auto status =
          postcards.report(u32_key(flow), hop, 5, (flow + hop) % 4096);
      ASSERT_TRUE(status.ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  int found = 0;
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    const auto path = postcards.path_of(u32_key(flow));
    if (path.ok() && path->size() == 5 && (*path)[0] == flow % 4096) {
      ++found;
    }
  }
  EXPECT_GE(found, 98);
}

// ------------------------------------------------------ flush/shutdown

TEST(CollectorRuntimeTest, BatchFlushOnShutdown) {
  auto config = small_config(2);
  config.op_batch_size = 64;  // far more than we submit: nothing
                              // reaches the NIC until a flush
  Client client = Client::local(config);
  for (std::uint32_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(u32_key(id), id + 1).ok());
  }
  EXPECT_LT(client.stats().ingest.verbs_executed, 16u);
  client.stop();  // shutdown must deliver the partial batches
  EXPECT_EQ(client.stats().ingest.verbs_executed, 16u);  // 8 reports x N=2
  for (std::uint32_t id = 0; id < 8; ++id) {
    const auto value = client.keywrite().get_u32(u32_key(id));
    ASSERT_TRUE(value.ok()) << "key " << id << " lost at shutdown";
    EXPECT_EQ(*value, id + 1);
  }
}

TEST(CollectorRuntimeTest, FlushAlsoDrainsAppendBatches) {
  auto config = small_config(2);
  config.append_batch_size = 16;  // entries stay in the engine registers
  Client client = Client::local(config);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.list(3).append_u32(40 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto events = client.events(3).max(5).run();
  ASSERT_TRUE(events.ok());
  std::vector<std::uint32_t> drained;
  for (const auto& entry : events->entries) {
    drained.push_back(common::load_u32(entry.data()));
  }
  EXPECT_EQ(drained, (std::vector<std::uint32_t>{40, 41, 42, 43, 44}));
}

TEST(CollectorRuntimeTest, FlushAndSubmitAfterStopAreSafe) {
  // stop() joins the workers; later flush()/report() must fall back to
  // the caller thread instead of waiting on (or enqueueing for) workers
  // that no longer exist.
  Client client = Client::local(small_config(2, ThreadMode::kThreaded));
  ASSERT_TRUE(client.keywrite().put_u32(u32_key(1), 11).ok());
  client.stop();
  EXPECT_TRUE(client.flush().ok());  // must not hang
  ASSERT_TRUE(client.keywrite().put_u32(u32_key(2), 22).ok());
  ASSERT_TRUE(client.flush().ok());
  for (std::uint32_t id : {1u, 2u}) {
    const auto value = client.keywrite().get_u32(u32_key(id));
    ASSERT_TRUE(value.ok()) << "key " << id;
    EXPECT_EQ(*value, id * 11);
  }
}

TEST(CollectorRuntimeTest, ThreadedPipelineMatchesInline) {
  Client client = Client::local(small_config(4, ThreadMode::kThreaded));
  EXPECT_TRUE(client.local_runtime()->pipeline().threaded());
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(u32_key(id), id ^ 0xA5A5).ok());
    ASSERT_TRUE(client.counters().add(u32_key(id % 32), 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    const auto value = client.keywrite().get_u32(u32_key(id));
    if (value.ok() && *value == (id ^ 0xA5A5)) ++hits;
  }
  EXPECT_GE(hits, 298);
  EXPECT_EQ(client.stats().ingest.reports_in, 600u);
  client.stop();
}

// ------------------------------------------- single-shard equivalence

TEST(CollectorRuntimeTest, SingleShardMatchesUnshardedStore) {
  // The same reports through (a) a 1-shard runtime behind the Client
  // facade and (b) the raw unsharded engine->crafter->NIC path must
  // produce byte-identical Key-Write store memory.
  auto config = small_config(1);
  config.op_batch_size = 4;
  Client client = Client::local(config);

  RdmaService unsharded;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  unsharded.enable_keywrite(kw);
  rdma::ConnectRequest req;
  req.requester_qpn = 0x70;
  req.start_psn = 0x1000;
  const rdma::ConnectAccept accept = unsharded.accept(req);
  translator::KeyWriteGeometry geo;
  for (const auto& region : accept.regions) {
    if (region.kind != rdma::RegionKind::kKeyWrite) continue;
    geo.base_va = region.base_va;
    geo.rkey = region.rkey;
    geo.value_bytes = (region.param1 & 0xFFFF) - 4;
    geo.num_slots = region.param2;
  }
  translator::KeyWriteEngine engine(geo);
  translator::RdmaCrafter crafter(translator::CrafterEndpoints{},
                                  accept.responder_qpn, accept.start_psn);

  for (std::uint32_t id = 0; id < 200; ++id) {
    const auto parsed = reports::keywrite_u32(u32_key(id), id * 13 + 7);
    ASSERT_TRUE(client.keywrite().put_u32(u32_key(id), id * 13 + 7).ok());
    std::vector<translator::RdmaOp> ops;
    engine.translate(std::get<proto::KeyWriteReport>(parsed.report), false,
                     ops);
    for (auto& op : ops) {
      net::Packet frame = crafter.craft(op);
      auto out = unsharded.nic().ingest(frame);
      ASSERT_TRUE(out && out->responder.executed);
    }
  }
  ASSERT_TRUE(client.flush().ok());

  CollectorRuntime& runtime = *client.local_runtime();
  const rdma::MemoryRegion* sharded_region =
      runtime.shard(0).service().keywrite_region();
  const rdma::MemoryRegion* unsharded_region = unsharded.keywrite_region();
  ASSERT_EQ(sharded_region->length(), unsharded_region->length());
  EXPECT_EQ(std::memcmp(sharded_region->data(), unsharded_region->data(),
                        sharded_region->length()),
            0)
      << "1-shard runtime diverged from the unsharded write path";

  // And the query answers agree.
  for (std::uint32_t id = 0; id < 200; ++id) {
    const auto via_client = client.keywrite().get_u32(u32_key(id));
    const auto direct = unsharded.keywrite()->query(u32_key(id), 2);
    ASSERT_EQ(via_client.ok(), direct.status == QueryStatus::kHit);
    if (via_client.ok()) {
      EXPECT_EQ(*via_client, common::load_u32(direct.value.data()));
    }
  }
}

}  // namespace
}  // namespace dta::collector

#include <gtest/gtest.h>

#include "net/headers.h"
#include "rdma/cm.h"
#include "rdma/nic.h"

namespace dta::rdma {
namespace {

using common::ByteSpan;
using common::Bytes;

net::Packet roce_frame(const Bytes& datagram) {
  return net::Packet(net::build_udp_frame({}, {}, 1, 2, 999,
                                          net::kRoceUdpPort,
                                          ByteSpan(datagram)));
}

TEST(Nic, RoutesToCorrectQp) {
  Nic nic;
  MemoryRegion* mr = nic.pd().register_region(64, kRemoteWrite);
  QueuePair* qp = nic.create_qp();
  qp->to_init();
  qp->to_rtr(0);

  Bth bth;
  bth.opcode = Opcode::kWriteOnly;
  bth.dest_qpn = qp->qpn();
  bth.psn = 0;
  Reth reth;
  reth.virtual_addr = mr->base_va();
  reth.rkey = mr->rkey();
  reth.dma_length = 1;
  const Bytes payload = {0x5A};
  auto outcome = nic.ingest(roce_frame(build_roce_datagram(
      bth, &reth, nullptr, nullptr, nullptr, ByteSpan(payload))));
  ASSERT_TRUE(outcome);
  EXPECT_TRUE(outcome->responder.executed);
  EXPECT_EQ(mr->data()[0], 0x5A);
}

TEST(Nic, DropsUnknownQp) {
  Nic nic;
  Bth bth;
  bth.opcode = Opcode::kWriteOnly;
  bth.dest_qpn = 0x77;
  Reth reth;
  reth.dma_length = 0;
  auto outcome = nic.ingest(roce_frame(
      build_roce_datagram(bth, &reth, nullptr, nullptr, nullptr, {})));
  EXPECT_FALSE(outcome);
  EXPECT_EQ(nic.counters().datagrams_dropped, 1u);
}

TEST(Nic, DropsNonRoceTraffic) {
  Nic nic;
  const Bytes payload = {1, 2, 3};
  net::Packet pkt(net::build_udp_frame({}, {}, 1, 2, 10, 12345,
                                       ByteSpan(payload)));
  EXPECT_FALSE(nic.ingest(pkt));
}

TEST(Nic, MessageRateModelsServiceTime) {
  NicParams params;
  params.base_message_rate = 1e8;  // 10ns per verb
  Nic nic(params);
  MemoryRegion* mr = nic.pd().register_region(64, kRemoteWrite);
  QueuePair* qp = nic.create_qp();
  qp->to_init();
  qp->to_rtr(0);

  common::VirtualNs last = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    Bth bth;
    bth.opcode = Opcode::kWriteOnly;
    bth.dest_qpn = qp->qpn();
    bth.psn = i;
    Reth reth;
    reth.virtual_addr = mr->base_va();
    reth.rkey = mr->rkey();
    reth.dma_length = 1;
    const Bytes payload = {1};
    auto out = nic.ingest(roce_frame(build_roce_datagram(
        bth, &reth, nullptr, nullptr, nullptr, ByteSpan(payload))));
    ASSERT_TRUE(out);
    last = out->completed_at;
  }
  EXPECT_EQ(last, 1000u);  // 100 verbs x 10ns, all arriving at t=0
  EXPECT_NEAR(nic.modeled_verbs_per_sec(100), 1e8, 1e6);
}

TEST(Nic, QpCountDegradesMessageRate) {
  NicParams params;
  params.base_message_rate = 100e6;
  params.qp_cache_size = 4;
  params.qp_saturation = 64;
  params.max_qp_slowdown = 5.0;
  Nic nic(params);

  for (int i = 0; i < 4; ++i) nic.create_qp();
  EXPECT_DOUBLE_EQ(nic.effective_message_rate(), 100e6);

  for (int i = 0; i < 60; ++i) nic.create_qp();
  EXPECT_NEAR(nic.effective_message_rate(), 20e6, 1e5);  // 5x slower

  for (int i = 0; i < 100; ++i) nic.create_qp();
  EXPECT_NEAR(nic.effective_message_rate(), 20e6, 1e5);  // floor
}

TEST(Nic, QpDegradationIsMonotonic) {
  NicParams params;
  params.qp_cache_size = 2;
  params.qp_saturation = 32;
  Nic nic(params);
  double prev = nic.effective_message_rate();
  for (int i = 0; i < 40; ++i) {
    nic.create_qp();
    const double cur = nic.effective_message_rate();
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(Cm, ConnectRequestRoundTrip) {
  ConnectRequest req;
  req.requester_qpn = 0x70;
  req.start_psn = 0x1000;
  auto decoded = ConnectRequest::decode(ByteSpan(req.encode()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->requester_qpn, 0x70u);
  EXPECT_EQ(decoded->start_psn, 0x1000u);
}

TEST(Cm, ConnectAcceptRoundTripWithRegions) {
  ConnectAccept acc;
  acc.responder_qpn = 0x11;
  acc.start_psn = 0x1000;
  RegionAdvert kw;
  kw.kind = RegionKind::kKeyWrite;
  kw.rkey = 0x1001;
  kw.base_va = 0x100000000000ull;
  kw.length = 1 << 20;
  kw.param1 = 8;
  kw.param2 = (1 << 20) / 8;
  acc.regions.push_back(kw);
  RegionAdvert ap;
  ap.kind = RegionKind::kAppend;
  ap.param2 = (255ull << 32) | 65536;
  acc.regions.push_back(ap);

  auto decoded = ConnectAccept::decode(ByteSpan(acc.encode()));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->regions.size(), 2u);
  EXPECT_EQ(decoded->regions[0].kind, RegionKind::kKeyWrite);
  EXPECT_EQ(decoded->regions[0].param2, (1u << 20) / 8);
  EXPECT_EQ(decoded->regions[1].param2 >> 32, 255u);
}

TEST(Cm, RejectsWrongMagic) {
  Bytes junk = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_FALSE(ConnectRequest::decode(ByteSpan(junk)));
  EXPECT_FALSE(ConnectAccept::decode(ByteSpan(junk)));
}

}  // namespace
}  // namespace dta::rdma

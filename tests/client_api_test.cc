// dtalib v2 acceptance tests: every primitive round-trips through the
// typed dta::Client facade identically against LocalBackend (sharded
// CollectorRuntime) and ClusterBackend (N hosts x M shards, replica
// failover), and every failure mode of the error model comes back as a
// distinct dta::Status code — no bools, no optionals, no asserts/UB.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "dta/report_builders.h"
#include "dtalib/client.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

enum class BackendKind { kLocal, kCluster };

const char* kind_name(BackendKind kind) {
  return kind == BackendKind::kLocal ? "Local" : "Cluster";
}

collector::CollectorRuntimeConfig host_config(
    collector::ThreadMode mode = collector::ThreadMode::kInline) {
  collector::CollectorRuntimeConfig config;
  config.num_shards = 2;
  config.thread_mode = mode;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.append = ap;
  config.append_batch_size = 1;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 4096; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  return config;
}

Client make_client(BackendKind kind,
                   collector::ThreadMode mode = collector::ThreadMode::kInline,
                   translator::PartitionPolicy policy =
                       translator::PartitionPolicy::kReplicate) {
  if (kind == BackendKind::kLocal) {
    return Client::local(host_config(mode));
  }
  ClusterRuntimeConfig config;
  config.num_hosts = 2;
  config.policy = policy;
  config.host = host_config(mode);
  return Client::cluster(config);
}

class ClientApiTest : public ::testing::TestWithParam<BackendKind> {};

// ------------------------------------------------------ Key-Write

TEST_P(ClientApiTest, KeyWriteRoundTrip) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id * 7 + 3).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    const auto value = table.get_u32(reports::mixed_key(id));
    if (value.ok() && *value == id * 7 + 3) ++hits;
  }
  EXPECT_GE(hits, 298);  // slot collisions may cost a key or two

  // A key never reported is kNotFound — not a bare nullopt.
  const auto miss = table.get(reports::mixed_key(999999));
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), StatusCode::kNotFound);
}

TEST_P(ClientApiTest, KeyWriteRawBytesRoundTrip) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  Bytes value;
  common::put_u32(value, 0xDEADBEEF);
  ASSERT_TRUE(table.put(reports::u32_key(7), ByteSpan(value)).ok());
  ASSERT_TRUE(client.flush().ok());
  const auto got = table.get(reports::u32_key(7));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::load_u32(got->data()), 0xDEADBEEFu);
}

TEST_P(ClientApiTest, GetManyResolvesBatchInInputOrder) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id ^ 0x5A).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  std::vector<TelemetryKey> keys;
  for (std::uint32_t id = 0; id < 300; id += 3) {
    keys.push_back(reports::mixed_key(id));
  }
  keys.push_back(reports::mixed_key(999999));  // never written
  const auto results = table.get_many(keys);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), keys.size());
  int hits = 0;
  for (std::size_t i = 0; i + 1 < results->size(); ++i) {
    const auto& value = (*results)[i];
    if (value && common::load_u32(value->data()) == ((3 * i) ^ 0x5A)) ++hits;
  }
  EXPECT_GE(hits, 98);
  EXPECT_FALSE(results->back().has_value());
}

TEST_P(ClientApiTest, ZeroCopyViewsMatchCopiesAndOutliveRefresh) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id * 11 + 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  // get_view resolves through the same merge as get, without the copy.
  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    const auto view = table.get_view(reports::mixed_key(id));
    if (view.ok() && view->size() == 4 &&
        common::load_u32(view->data()) == id * 11 + 1) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 298);
  EXPECT_EQ(table.get_view(reports::mixed_key(999999)).code(),
            StatusCode::kNotFound);

  // Lifetime rule: a held view pins its snapshot, so overwriting the
  // key and refreshing serves the new value to new queries while the
  // held view's bytes stay exactly as read.
  const auto held = table.get_view(reports::mixed_key(5));
  ASSERT_TRUE(held.ok());
  const std::uint32_t before = common::load_u32(held->data());
  ASSERT_TRUE(table.put_u32(reports::mixed_key(5), 0xFEED).ok());
  ASSERT_TRUE(client.flush().ok());
  const auto after = table.get_view(reports::mixed_key(5));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(common::load_u32(after->data()), 0xFEEDu);
  EXPECT_EQ(common::load_u32(held->data()), before);
  // The copy escape detaches: equal bytes, owned storage.
  const Bytes detached = held->to_bytes();
  EXPECT_EQ(common::load_u32(detached.data()), before);

  // Batch views: input order, nullopt misses, all zero-copy.
  std::vector<TelemetryKey> keys;
  for (std::uint32_t id = 0; id < 300; id += 3) {
    keys.push_back(reports::mixed_key(id));
  }
  keys.push_back(reports::mixed_key(999999));
  const auto views = table.get_many_views(keys);
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views->size(), keys.size());
  int batch_hits = 0;
  for (std::size_t i = 0; i + 1 < views->size(); ++i) {
    const auto& view = (*views)[i];
    if (view && common::load_u32(view->data()) == (3 * i) * 11 + 1) {
      ++batch_hits;
    }
  }
  EXPECT_GE(batch_hits, 97);
  EXPECT_FALSE(views->back().has_value());

  // Append entries arrive in list order through the cursor-based event
  // query (the zero-copy snapshot path behind it is covered at the
  // store level in snapshot_cache_test's append_read_views cases).
  auto list = client.list(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(list.append_u32(700 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto batch = client.events(1).max(10).run();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->entries.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(common::load_u32(batch->entries[i].data()), 700 + i);
  }
}

TEST_P(ClientApiTest, RedundancyBeyondEngineCountRejected) {
  // The CRC catalogue has exactly 8 slot-hash engines; redundancy 9
  // would need a ninth. The facade rejects it as kOutOfRange instead of
  // letting slot_crc() abort on the out-of-range engine index.
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  EXPECT_EQ(table.put_u32(reports::u32_key(1), 1, /*redundancy=*/9).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(client.counters().add(reports::u32_key(1), 1, 9).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 1, 8).ok());
  ASSERT_TRUE(client.flush().ok());
  QueryOptions nine;
  nine.redundancy = 9;
  EXPECT_EQ(table.get(reports::u32_key(1), nine).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(table.get_view(reports::u32_key(1), nine).code(),
            StatusCode::kOutOfRange);
  // The full 8 engines work end to end.
  QueryOptions eight;
  eight.redundancy = 8;
  const auto got = table.get_u32(reports::u32_key(1), eight);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1u);
}

TEST_P(ClientApiTest, AsyncGetsResolve) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id + 5).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  std::vector<std::future<Expected<common::Bytes>>> pending;
  for (std::uint32_t id = 0; id < 50; ++id) {
    pending.push_back(table.get_async(reports::mixed_key(id)));
  }
  int hits = 0;
  for (auto& future : pending) {
    const auto value = future.get();
    if (value.ok()) ++hits;
  }
  EXPECT_GE(hits, 49);

  auto batch = table.get_many_async({reports::mixed_key(1)}).get();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_TRUE((*batch)[0].has_value());
}

// --------------------------------------------------- Key-Increment

TEST_P(ClientApiTest, CounterRoundTrip) {
  Client client = make_client(GetParam());
  auto counters = client.counters();
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t id = 0; id < 32; ++id) {
      ASSERT_TRUE(counters.add(reports::u32_key(id), id + 1).ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  for (std::uint32_t id = 0; id < 32; ++id) {
    const auto estimate = counters.get(reports::u32_key(id));
    ASSERT_TRUE(estimate.ok()) << estimate.status().to_string();
    EXPECT_GE(*estimate, 3u * (id + 1));  // CMS never underestimates
  }
  const auto async_estimate = counters.get_async(reports::u32_key(1)).get();
  ASSERT_TRUE(async_estimate.ok());
  EXPECT_GE(*async_estimate, 6u);
}

// ---------------------------------------------------------- Append

TEST_P(ClientApiTest, AppendRoundTrip) {
  Client client = make_client(GetParam());
  auto list = client.list(3);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(list.append_u32(30 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto events = client.events(list).max(6).run();
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  ASSERT_EQ(events->entries.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(common::load_u32(events->entries[i].data()), 30 + i);
  }
  EXPECT_EQ(events->dropped, 0u);
  EXPECT_EQ(events->remaining, 0u);
  EXPECT_EQ(events->next.position, 6u);
}

// ----------------------------------------------------- Postcarding

TEST_P(ClientApiTest, PostcardRoundTrip) {
  Client client = make_client(GetParam());
  auto postcards = client.postcards();
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    for (std::uint8_t hop = 0; hop < 5; ++hop) {
      ASSERT_TRUE(postcards
                      .report(reports::u32_key(flow), hop, /*path_len=*/5,
                              (flow + hop) % 4096)
                      .ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  int found = 0;
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    const auto path = postcards.path_of(reports::u32_key(flow));
    if (path.ok() && path->size() == 5 && (*path)[0] == flow % 4096) ++found;
  }
  EXPECT_GE(found, 98);

  const auto miss = postcards.path_of(reports::u32_key(999999));
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), StatusCode::kNotFound);
}

// ------------------------------------------------------ error model

TEST_P(ClientApiTest, ErrorModelDistinctCodes) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 11).ok());
  ASSERT_TRUE(client.flush().ok());

  // Empty keys are invalid, for reporting and querying.
  EXPECT_EQ(table.put_u32(TelemetryKey{}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.get(TelemetryKey{}).code(), StatusCode::kInvalidArgument);

  // Zero redundancy can neither write nor vote.
  EXPECT_EQ(table.put_u32(reports::u32_key(2), 1, /*redundancy=*/0).code(),
            StatusCode::kInvalidArgument);
  QueryOptions zero_votes;
  zero_votes.redundancy = 0;
  EXPECT_EQ(table.get(reports::u32_key(1), zero_votes).code(),
            StatusCode::kInvalidArgument);

  // A value wider than the store's geometry is rejected, not truncated.
  Bytes wide(64, 0xAB);
  EXPECT_EQ(table.put(reports::u32_key(3), ByteSpan(wide)).code(),
            StatusCode::kOutOfRange);

  // Unknown Append list ids, for appends and reads.
  const std::uint32_t bogus_list = 1000;
  EXPECT_EQ(client.list(bogus_list).append_u32(1).code(),
            StatusCode::kUnknownList);
  EXPECT_EQ(client.events(bogus_list).max(1).run().code(),
            StatusCode::kUnknownList);

  // Entry size must match the ring geometry.
  Bytes wrong_entry(8, 1);
  EXPECT_EQ(client.list(0).append(ByteSpan(wrong_entry)).code(),
            StatusCode::kOutOfRange);

  // A 260B entry aliases entry_size 4 in the 8-bit wire field; the
  // payload-size check must reject it instead of silently truncating.
  Bytes huge_entry(260, 2);
  EXPECT_EQ(client.list(0).append(ByteSpan(huge_entry)).code(),
            StatusCode::kOutOfRange);

  // An event cursor ahead of the head is kOutOfRange (the rest of the
  // cursor error surface is covered in the event-cursor tests).
  EXPECT_EQ(client.events(0).since(1u << 30).run().code(),
            StatusCode::kOutOfRange);

  // A covers_seq floor ahead of everything submitted is unsatisfiable.
  QueryOptions future_floor;
  future_floor.covers_seq = 1u << 30;
  EXPECT_EQ(table.get(reports::u32_key(1), future_floor).code(),
            StatusCode::kStalenessViolation);

  // Postcard hop beyond the configured path length.
  EXPECT_EQ(client.postcards()
                .report(reports::u32_key(1), /*hop=*/9, /*path_len=*/5, 1)
                .code(),
            StatusCode::kOutOfRange);
}

// Rejections carry a message naming the failing field and its value —
// a bare code is not actionable from a client log line.
TEST_P(ClientApiTest, ErrorMessagesNameTheFailingField) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();

  auto contains = [](const Status& status, const char* needle) {
    return status.message().find(needle) != std::string::npos;
  };

  const Status empty_key = table.put_u32(TelemetryKey{}, 1);
  EXPECT_TRUE(contains(empty_key, "empty telemetry key"))
      << empty_key.to_string();

  const Status no_redundancy = table.put_u32(reports::u32_key(2), 1, 0);
  EXPECT_TRUE(contains(no_redundancy, "redundancy 0"))
      << no_redundancy.to_string();

  const Status too_wide = table.put_u32(reports::u32_key(2), 1, 9);
  EXPECT_TRUE(contains(too_wide, "redundancy 9")) << too_wide.to_string();
  EXPECT_TRUE(contains(too_wide, "8 slot-hash engines"))
      << too_wide.to_string();

  Bytes wide(64, 0xAB);
  const Status fat_value = table.put(reports::u32_key(3), ByteSpan(wide));
  EXPECT_TRUE(contains(fat_value, "64B")) << fat_value.to_string();
  EXPECT_TRUE(contains(fat_value, "value_bytes")) << fat_value.to_string();

  const Status bad_list = client.list(1000).append_u32(1);
  EXPECT_TRUE(contains(bad_list, "list id 1000")) << bad_list.to_string();

  Bytes wrong_entry(8, 1);
  const Status bad_entry = client.list(0).append(ByteSpan(wrong_entry));
  EXPECT_TRUE(contains(bad_entry, "entry_size")) << bad_entry.to_string();

  const Status bad_hop =
      client.postcards().report(reports::u32_key(1), /*hop=*/9,
                                /*path_len=*/5, 1);
  EXPECT_TRUE(contains(bad_hop, "hop 9")) << bad_hop.to_string();

  const auto bad_query = table.get(TelemetryKey{});
  EXPECT_TRUE(contains(bad_query.status(), "empty telemetry key"))
      << bad_query.status().to_string();

  // Range-query validation names the inverted bounds.
  const auto inverted = client.range(table)
                            .from(reports::u32_key(9))
                            .to(reports::u32_key(1))
                            .run();
  EXPECT_EQ(inverted.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(contains(inverted.status(), "bounds inverted"))
      << inverted.status().to_string();

  // Event-query validation names the cursor and the head it passed.
  ASSERT_TRUE(client.list(0).append_u32(7).ok());
  ASSERT_TRUE(client.flush().ok());
  const auto ahead = client.events(0).since(1u << 20).run();
  EXPECT_EQ(ahead.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(contains(ahead.status(), "cursor"))
      << ahead.status().to_string();
}

TEST_P(ClientApiTest, NotConfiguredPrimitivesReportCleanly) {
  // A client with only Key-Write enabled: the other handles fail with
  // kNotConfigured instead of dereferencing a missing store.
  collector::CollectorRuntimeConfig config;
  config.num_shards = 2;
  config.thread_mode = collector::ThreadMode::kInline;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;

  Client client = GetParam() == BackendKind::kLocal
                      ? Client::local(config)
                      : Client::cluster([&] {
                          ClusterRuntimeConfig cluster;
                          cluster.num_hosts = 2;
                          cluster.policy =
                              translator::PartitionPolicy::kReplicate;
                          cluster.host = config;
                          return cluster;
                        }());

  EXPECT_EQ(client.counters().add(reports::u32_key(1), 1).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.counters().get(reports::u32_key(1)).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.list(0).append_u32(1).code(), StatusCode::kNotConfigured);
  EXPECT_EQ(client.events(0).max(1).run().code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.postcards().report(reports::u32_key(1), 0, 1, 1).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.postcards().path_of(reports::u32_key(1)).code(),
            StatusCode::kNotConfigured);
  // Key-Write itself works.
  EXPECT_TRUE(client.keywrite().put_u32(reports::u32_key(1), 5).ok());
}

// -------------------------------------------------- failover paths

TEST_P(ClientApiTest, FailoverAndUnavailability) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id + 5).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  if (GetParam() == BackendKind::kLocal) {
    // A local backend has no host to fail — typed error, not UB.
    EXPECT_EQ(client.fail_host(0).code(), StatusCode::kUnsupported);
    return;
  }

  // Replica failover: host 0 dies, every key still answers from the
  // survivor through the same facade calls.
  ASSERT_TRUE(client.fail_host(0).ok());
  int hits = 0;
  for (std::uint32_t id = 0; id < 100; ++id) {
    const auto value = table.get_u32(reports::mixed_key(id));
    if (value.ok() && *value == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(client.stats().live_hosts, 1u);

  // The whole replica set dead: a typed kUnavailable, for point, batch
  // and event queries alike.
  ASSERT_TRUE(client.fail_host(1).ok());
  const auto dead = table.get(reports::mixed_key(1));
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable);
  EXPECT_EQ(table.get_many({reports::mixed_key(1)}).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.events(0).max(1).run().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.fail_host(9).code(), StatusCode::kInvalidArgument);
}

TEST(ClientApiClusterTest, KeyHashDeadOwnerLosesOnlyItsPartition) {
  Client client = make_client(BackendKind::kCluster,
                              collector::ThreadMode::kInline,
                              translator::PartitionPolicy::kByKeyHash);
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 200; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  ASSERT_TRUE(client.fail_host(0).ok());

  ClusterRuntime& cluster = *client.cluster_runtime();
  int answered = 0, unavailable = 0;
  for (std::uint32_t id = 0; id < 200; ++id) {
    const auto owner =
        cluster.selector().owner_host(reports::mixed_key(id));
    ASSERT_TRUE(owner.has_value());
    const auto value = table.get(reports::mixed_key(id));
    if (*owner == 0) {
      ASSERT_FALSE(value.ok());
      EXPECT_EQ(value.code(), StatusCode::kUnavailable) << "key " << id;
      ++unavailable;
    } else if (value.ok()) {
      ++answered;
    }
  }
  EXPECT_GT(answered, 50);
  EXPECT_GT(unavailable, 50);
}

// -------------------------------------------- staleness-budget path

TEST_P(ClientApiTest, StalenessBudgetServesStaleAndFloorOverrides) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 11).ok());
  ASSERT_TRUE(client.flush().ok());
  ASSERT_TRUE(table.get_u32(reports::u32_key(1)).ok());  // warm the cache

  // New reports land; a budgeted query may ride the cached snapshot
  // and miss them (stale within budget)...
  ASSERT_TRUE(table.put_u32(reports::u32_key(2), 22).ok());
  ASSERT_TRUE(client.flush().ok());
  QueryOptions stale;
  stale.staleness = collector::SnapshotStalenessBudget{};
  stale.staleness->generations = 1u << 20;
  const auto stale_read = table.get_u32(reports::u32_key(2), stale);
  if (stale_read.ok()) {
    EXPECT_EQ(*stale_read, 22u);  // the cache may have been refreshed
  } else {
    EXPECT_EQ(stale_read.code(), StatusCode::kNotFound);
  }

  // ...but read_your_submits overrides any budget: the same query with
  // the floor set must see the report.
  QueryOptions fresh = stale;
  fresh.read_your_submits = true;
  const auto fresh_read = table.get_u32(reports::u32_key(2), fresh);
  ASSERT_TRUE(fresh_read.ok()) << fresh_read.status().to_string();
  EXPECT_EQ(*fresh_read, 22u);

  // And the pre-budget exact-freshness default still answers.
  const auto exact = table.get_u32(reports::u32_key(2));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 22u);
}

// ------------------------------------------- concurrency (TSan target)

TEST_P(ClientApiTest, QueriesRunConcurrentlyWithThreadedIngest) {
  Client client = make_client(GetParam(), collector::ThreadMode::kThreaded);
  auto table = client.keywrite();
  std::vector<std::future<Expected<common::Bytes>>> pending;
  std::uint32_t next_id = 0;
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 50; ++i, ++next_id) {
      ASSERT_TRUE(table.put_u32(reports::mixed_key(next_id), next_id * 7 + 1).ok());
    }
    if (round > 0) {
      const std::uint32_t probe = (round - 1) * 50;
      pending.push_back(table.get_async(reports::mixed_key(probe)));
      pending.push_back(table.get_async(reports::mixed_key(probe + 49)));
    }
  }
  int hits = 0;
  for (auto& future : pending) {
    if (future.get().ok()) ++hits;
  }
  EXPECT_EQ(hits, static_cast<int>(pending.size()));
  client.stop();
  const auto stats = client.stats();
  const std::uint64_t copies =
      GetParam() == BackendKind::kCluster ? 2u : 1u;
  EXPECT_EQ(stats.ingest.reports_in, copies * 1000u);
}

// ------------------------------------------------------------- stats

TEST_P(ClientApiTest, StatsAggregateIngestAndTranslation) {
  Client client = make_client(GetParam());
  for (std::uint32_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(reports::mixed_key(id), id).ok());
    ASSERT_TRUE(client.counters().add(reports::mixed_key(id), 2).ok());
  }
  ASSERT_TRUE(client.list(1).append_u32(9).ok());
  ASSERT_TRUE(client.flush().ok());

  const auto stats = client.stats();
  const std::uint64_t copies =
      GetParam() == BackendKind::kCluster ? 2u : 1u;
  EXPECT_EQ(stats.ingest.reports_in, copies * 81u);
  EXPECT_EQ(stats.translation.keywrite_reports, copies * 40u);
  EXPECT_EQ(stats.translation.keywrite_writes, copies * 80u);  // N=2
  EXPECT_EQ(stats.translation.keyincrement_reports, copies * 40u);
  EXPECT_EQ(stats.translation.fetch_adds, copies * 80u);
  EXPECT_EQ(stats.translation.append_entries_in, copies * 1u);
  EXPECT_EQ(stats.num_hosts, copies);
  EXPECT_EQ(stats.live_hosts, copies);
  ASSERT_EQ(stats.per_host.size(), copies);
  EXPECT_EQ(stats.per_host[0].ingest.reports_in, 81u);
  EXPECT_FALSE(stats.per_host[0].failed);
  EXPECT_GT(client.modeled_verbs_per_sec(), 0.0);
}

// ------------------------------------------------- multi-tenant plane

TEST_P(ClientApiTest, TenantQuotaExhaustionIsTypedNotSilent) {
  Client client = make_client(GetParam());
  TenantConfig config;
  config.quota.submits_per_second = 1.0;  // refills ~nothing mid-test
  config.quota.submit_burst = 5;
  client.tenants().register_tenant(7, config);

  ReportOptions as7;
  as7.tenant = 7;
  auto table = client.keywrite();
  int admitted = 0, shed = 0;
  Status last_shed = Status::Ok();
  for (std::uint32_t id = 0; id < 20; ++id) {
    const Status status = table.put_u32(reports::u32_key(id), id, 2, as7);
    if (status.ok()) {
      ++admitted;
    } else {
      ++shed;
      last_shed = status;
    }
  }
  // The burst admits, the rest sheds with a typed, hinted Status.
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(shed, 15);
  EXPECT_EQ(last_shed.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(last_shed.retry_after_ns(), 0u);

  // Shedding is accounted, never silent.
  const auto counters = client.tenants().counters(7);
  EXPECT_EQ(counters.submits_admitted, 5u);
  EXPECT_EQ(counters.submits_shed, 15u);

  // Tenant 7's exhaustion never touches the default tenant.
  EXPECT_TRUE(table.put_u32(reports::u32_key(100), 1).ok());
}

TEST_P(ClientApiTest, TenantQueryQuotaShedsQueries) {
  Client client = make_client(GetParam());
  TenantConfig config;
  config.quota.queries_per_second = 1.0;
  config.quota.query_burst = 3;
  client.tenants().register_tenant(9, config);

  auto table = client.keywrite();
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 11).ok());
  ASSERT_TRUE(client.flush().ok());

  QueryOptions as9 = client.tenant_options(9);
  ASSERT_EQ(as9.tenant, 9u);
  int ok = 0, shed = 0;
  for (int i = 0; i < 10; ++i) {
    const auto value = table.get_u32(reports::u32_key(1), as9);
    if (value.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(value.code(), StatusCode::kResourceExhausted);
      EXPECT_GT(value.status().retry_after_ns(), 0u);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(shed, 7);
  EXPECT_EQ(client.tenants().counters(9).queries_shed, 7u);

  // The default tenant still queries freely.
  EXPECT_TRUE(table.get_u32(reports::u32_key(1)).ok());
}

TEST_P(ClientApiTest, TenantOptionsCarryRegisteredDefaults) {
  Client client = make_client(GetParam());
  TenantConfig config;
  config.query_defaults.redundancy = 1;
  config.query_defaults.read_your_submits = true;
  client.tenants().register_tenant(4, config);

  const QueryOptions opts = client.tenant_options(4);
  EXPECT_EQ(opts.tenant, 4u);
  EXPECT_EQ(opts.redundancy, 1u);
  EXPECT_TRUE(opts.read_your_submits);

  // Unregistered tenants get plain defaults, tenant stamped.
  const QueryOptions plain = client.tenant_options(12);
  EXPECT_EQ(plain.tenant, 12u);
  EXPECT_EQ(plain.redundancy, 2u);
  EXPECT_FALSE(plain.read_your_submits);
}

TEST_P(ClientApiTest, PerTenantStatsAttributeIngest) {
  Client client = make_client(GetParam());
  client.tenants().register_tenant(2, {});
  client.tenants().register_tenant(3, {});

  ReportOptions as2, as3;
  as2.tenant = 2;
  as3.tenant = 3;
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 12; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id, 2, as2).ok());
  }
  for (std::uint32_t id = 100; id < 105; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id, 2, as3).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  const auto stats = client.stats();
  const std::uint64_t copies =
      GetParam() == BackendKind::kCluster ? 2u : 1u;
  auto row_of = [&](TenantId tenant) -> const TenantStatsRow* {
    for (const auto& row : stats.per_tenant) {
      if (row.tenant == tenant) return &row;
    }
    return nullptr;
  };
  const auto* row2 = row_of(2);
  const auto* row3 = row_of(3);
  ASSERT_NE(row2, nullptr);
  ASSERT_NE(row3, nullptr);
  EXPECT_EQ(row2->counters.submits_admitted, 12u);
  EXPECT_EQ(row2->ingest_reports, copies * 12u);
  EXPECT_EQ(row3->counters.submits_admitted, 5u);
  EXPECT_EQ(row3->ingest_reports, copies * 5u);
  // Rows come back sorted by tenant id.
  for (std::size_t i = 1; i < stats.per_tenant.size(); ++i) {
    EXPECT_LT(stats.per_tenant[i - 1].tenant, stats.per_tenant[i].tenant);
  }
}

// Two tenants submitting from concurrent threads (TSan target): the
// backend serializes submits internally, so neither ingest nor the
// tenant counters may race or lose reports.
TEST_P(ClientApiTest, TwoTenantsSubmitConcurrently) {
  Client client = make_client(GetParam(), collector::ThreadMode::kThreaded);
  client.tenants().register_tenant(2, {});
  client.tenants().register_tenant(3, {});

  constexpr std::uint32_t kPerTenant = 400;
  auto submit_as = [&client](TenantId tenant, std::uint32_t base) {
    ReportOptions opts;
    opts.tenant = tenant;
    auto table = client.keywrite();
    for (std::uint32_t i = 0; i < kPerTenant; ++i) {
      ASSERT_TRUE(
          table.put_u32(reports::mixed_key(base + i), i, 2, opts).ok());
    }
  };
  std::thread t2([&] { submit_as(2, 0); });
  std::thread t3([&] { submit_as(3, 1u << 20); });
  t2.join();
  t3.join();
  ASSERT_TRUE(client.flush().ok());
  client.stop();

  const auto stats = client.stats();
  const std::uint64_t copies =
      GetParam() == BackendKind::kCluster ? 2u : 1u;
  EXPECT_EQ(stats.ingest.reports_in, copies * 2u * kPerTenant);
  EXPECT_EQ(client.tenants().counters(2).submits_admitted, kPerTenant);
  EXPECT_EQ(client.tenants().counters(3).submits_admitted, kPerTenant);
}

INSTANTIATE_TEST_SUITE_P(Backends, ClientApiTest,
                         ::testing::Values(BackendKind::kLocal,
                                           BackendKind::kCluster),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return kind_name(info.param);
                         });

}  // namespace
}  // namespace dta

// ClusterRuntime tests, driven through the dta::Client facade
// (ClusterBackend): two-level scale-out (hosts x shards), replica
// failover after a collector death, the async snapshot-based query
// tier (point/range/event queries, concurrent with ingest — the TSan
// target), worker pinning, and the translator's per-host connections.
// Reports are built by the shared typed builders; cluster internals
// (selector, snapshot caches, per-shard stats) are reached through
// Client::cluster_runtime().
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "dta/report_builders.h"
#include "dtalib/client.h"
#include "translator/translator.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  return reports::u64_key(z);
}

ClusterRuntimeConfig cluster_config(
    std::uint32_t hosts, std::uint32_t shards,
    translator::PartitionPolicy policy =
        translator::PartitionPolicy::kByKeyHash,
    collector::ThreadMode mode = collector::ThreadMode::kInline) {
  ClusterRuntimeConfig config;
  config.num_hosts = hosts;
  config.policy = policy;
  config.host.num_shards = shards;
  config.host.thread_mode = mode;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.host.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.host.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 16;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.host.append = ap;
  config.host.append_batch_size = 1;
  return config;
}

// ------------------------------------------------------------ scale-out

TEST(ClusterRuntime, AggregateRateScalesHostsTimesShards) {
  // §7's scaling claim composed across both tiers: every shard of every
  // host owns an independent NIC message unit, so a 4x4 kByKeyHash
  // cluster models ~16x the 1x1 deployment (exact up to shard balance;
  // with CRC routing every shard is hit at these key counts).
  Client single = Client::cluster(cluster_config(1, 1));
  Client cluster = Client::cluster(cluster_config(4, 4));

  for (std::uint64_t id = 0; id < 8000; ++id) {
    ASSERT_TRUE(
        single.keywrite().put_u32(key_of(id), 1, /*redundancy=*/1).ok());
    ASSERT_TRUE(
        cluster.keywrite().put_u32(key_of(id), 1, /*redundancy=*/1).ok());
  }
  ASSERT_TRUE(single.flush().ok());
  ASSERT_TRUE(cluster.flush().ok());

  const double base = single.modeled_verbs_per_sec();
  ASSERT_GT(base, 0.0);
  const double ratio = cluster.modeled_verbs_per_sec() / base;
  EXPECT_NEAR(ratio, 16.0, 16.0 * 0.02);

  // All 16 shard NICs took part.
  ClusterRuntime& runtime = *cluster.cluster_runtime();
  for (std::uint32_t h = 0; h < 4; ++h) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_GT(runtime.host(h).shard(s).stats().verbs_executed, 0u)
          << "host " << h << " shard " << s;
    }
  }
}

TEST(ClusterRuntime, KeyHashClusterAnswersEveryKey) {
  Client client = Client::cluster(cluster_config(3, 2));
  for (std::uint64_t id = 0; id < 600; ++id) {
    ASSERT_TRUE(client.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id * 3))
                    .ok());
  }
  ASSERT_TRUE(client.flush().ok());
  int hits = 0;
  for (std::uint64_t id = 0; id < 600; ++id) {
    const auto value = client.keywrite().get_u32(key_of(id));
    if (value.ok() && *value == id * 3) ++hits;
  }
  EXPECT_GE(hits, 598);  // slot collisions may cost a key or two
}

TEST(ClusterRuntime, ByDestinationIpRoutesOnAddress) {
  Client client = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kByDestinationIp));
  ClusterRuntime& cluster = *client.cluster_runtime();
  ReportOptions to_host1;
  to_host1.dst_ip = cluster.host_ip(1);
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(key_of(id), 7, 2, to_host1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  EXPECT_EQ(cluster.host(0).stats().reports_in, 0u);
  EXPECT_EQ(cluster.host(1).stats().reports_in, 100u);
  // The key still determines the host-internal shard, and queries (which
  // fan out over hosts under this policy) find the values.
  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    if (client.keywrite().get(key_of(id)).ok()) ++hits;
  }
  EXPECT_GE(hits, 99);
}

TEST(ClusterRuntime, HostIpAddressesExactlyThatHost) {
  // Regression: with 3 hosts the raw base address is not divisible by
  // the host count, so an unnormalized modulo would rotate the mapping
  // (host_ip(0) -> host 1). host_ip(h) must deliver to host h exactly.
  Client client = Client::cluster(cluster_config(
      3, 2, translator::PartitionPolicy::kByDestinationIp));
  ClusterRuntime& cluster = *client.cluster_runtime();
  for (std::uint32_t h = 0; h < 3; ++h) {
    ReportOptions to_host;
    to_host.dst_ip = cluster.host_ip(h);
    for (std::uint64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(
          client.keywrite().put_u32(key_of(h * 100 + id), 1, 2, to_host).ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  for (std::uint32_t h = 0; h < 3; ++h) {
    EXPECT_EQ(cluster.host(h).stats().reports_in, 10u) << "host " << h;
  }
}

TEST(ClusterRuntime, ByDestinationIpEventsReadTheAddressedHost) {
  // Only the addressed host holds the list under kByDestinationIp; the
  // event query must follow the same mapping as submit, not fall back
  // to an arbitrary live host with an untouched (zero) ring.
  Client client = Client::cluster(cluster_config(
      3, 2, translator::PartitionPolicy::kByDestinationIp));
  ClusterRuntime& cluster = *client.cluster_runtime();
  ReportOptions to_host1;
  to_host1.dst_ip = cluster.host_ip(1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.list(2).append_u32(70 + i, to_host1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  QueryOptions from_host1;
  from_host1.dst_ip = cluster.host_ip(1);
  const auto events = client.events(2).options(from_host1).max(4).run();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->entries.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(common::load_u32(events->entries[i].data()), 70 + i);
  }
}

// ----------------------------------------------------------- failover

TEST(ClusterRuntime, ReplicatePointQuerySurvivesHostDeath) {
  Client client = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(client.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id + 5))
                    .ok());
  }
  ASSERT_TRUE(client.flush().ok());

  ASSERT_TRUE(client.fail_host(0).ok());
  EXPECT_EQ(client.stats().live_hosts, 1u);

  // Every key is still answerable — the merge layer asks the survivor.
  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const auto value = client.keywrite().get_u32(key_of(id));
    if (value.ok() && *value == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);

  // New reports only land on the survivor.
  ASSERT_TRUE(client.keywrite().put_u32(key_of(1000), 99).ok());
  ASSERT_TRUE(client.flush().ok());
  ClusterRuntime& cluster = *client.cluster_runtime();
  EXPECT_EQ(cluster.host(0).stats().reports_in, 100u);
  EXPECT_EQ(cluster.host(1).stats().reports_in, 101u);

  // Aggregate capacity reflects the loss (same workload, no failure:
  // twice the live shard NICs).
  Client healthy = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(healthy.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id + 5))
                    .ok());
  }
  ASSERT_TRUE(healthy.flush().ok());
  EXPECT_LT(client.modeled_verbs_per_sec(), healthy.modeled_verbs_per_sec());
}

TEST(ClusterRuntime, ReplicateEventQueryFailsOver) {
  Client client = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.list(3).append_u32(30 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  ASSERT_TRUE(client.fail_host(0).ok());
  const auto events = client.events(3).max(5).run();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->entries.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(common::load_u32(events->entries[i].data()), 30 + i);
  }
}

TEST(ClusterRuntime, KeyHashDeadOwnerLosesOnlyItsPartition) {
  Client client = Client::cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 200; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(key_of(id), 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  ASSERT_TRUE(client.fail_host(0).ok());
  ClusterRuntime& cluster = *client.cluster_runtime();
  int answered = 0, lost = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const auto owner = cluster.selector().owner_host(key_of(id));
    ASSERT_TRUE(owner.has_value());
    const auto value = client.keywrite().get(key_of(id));
    if (*owner == 0) {
      ASSERT_FALSE(value.ok()) << "key " << id << " answered by a dead host";
      EXPECT_EQ(value.code(), StatusCode::kUnavailable) << "key " << id;
      ++lost;
    } else if (value.ok()) {
      ++answered;
    }
  }
  EXPECT_GT(answered, 50);
  EXPECT_GT(lost, 50);
}

TEST(ClusterRuntime, FailoverDoesNotServeDeadHostCachedSnapshots) {
  // Cluster-tier cache coherence: queries before the failure populate
  // every host's snapshot cache; fail_host must drop the dead host's
  // entries, and the failover path must answer every key from the
  // survivor without ever consulting the dead host's cache again.
  Client client = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(client.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id + 5))
                    .ok());
  }
  ASSERT_TRUE(client.flush().ok());
  for (std::uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE(client.keywrite().get(key_of(id)).ok());
  }
  ClusterRuntime& cluster = *client.cluster_runtime();
  ASSERT_GT(cluster.host(0).snapshot_cache().cached_count(), 0u);
  const auto before = cluster.host(0).snapshot_cache().stats();

  ASSERT_TRUE(client.fail_host(0).ok());
  EXPECT_EQ(cluster.host(0).snapshot_cache().cached_count(), 0u)
      << "dead host still holds cached snapshots";

  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const auto value = client.keywrite().get_u32(key_of(id));
    if (value.ok() && *value == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);

  const auto after = cluster.host(0).snapshot_cache().stats();
  EXPECT_EQ(after.hits, before.hits)
      << "query tier served a snapshot from the dead host's cache";
  EXPECT_EQ(after.misses, before.misses)
      << "query tier re-copied from the dead host";
  EXPECT_EQ(cluster.host(0).snapshot_cache().cached_count(), 0u);
}

TEST(ClusterRuntime, RangeQueryPinsOneSnapshotPerShard) {
  // A multi-shard batch get must route every sub-range through one
  // generation pin: however many keys land on a shard, the shard is
  // copied at most once per query — and an identical repeat of the
  // query is answered entirely from the cache.
  Client client = Client::cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(client.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id))
                    .ok());
  }
  ASSERT_TRUE(client.flush().ok());

  std::vector<TelemetryKey> keys;
  for (std::uint64_t id = 0; id < 300; ++id) keys.push_back(key_of(id));
  const auto first = client.keywrite().get_many(keys);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), keys.size());

  ClusterRuntime& cluster = *client.cluster_runtime();
  std::uint64_t copies = 0;
  for (std::uint32_t h = 0; h < 2; ++h) {
    const auto stats = cluster.host(h).snapshot_cache().stats();
    EXPECT_LE(stats.misses, 2u) << "host " << h
                                << " re-snapshotted a shard mid-query";
    copies += stats.misses;
  }
  EXPECT_LE(copies, 4u);  // at most one copy per (host, shard)

  const auto second = client.keywrite().get_many(keys);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), keys.size());
  std::uint64_t copies_after = 0;
  for (std::uint32_t h = 0; h < 2; ++h) {
    copies_after += cluster.host(h).snapshot_cache().stats().misses;
  }
  EXPECT_EQ(copies_after, copies)
      << "unchanged shards were re-copied by the second query";
  for (std::size_t i = 0; i < first->size(); ++i) {
    ASSERT_EQ((*first)[i].has_value(), (*second)[i].has_value())
        << "key " << i;
  }
}

// ------------------------------------------------------- async queries

TEST(ClusterRuntime, RangeQueryResolvesBatchInInputOrder) {
  Client client = Client::cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(client.keywrite()
                    .put_u32(key_of(id), static_cast<std::uint32_t>(id ^ 0x5A))
                    .ok());
  }
  ASSERT_TRUE(client.flush().ok());
  std::vector<TelemetryKey> keys;
  for (std::uint64_t id = 0; id < 300; id += 3) keys.push_back(key_of(id));
  keys.push_back(key_of(999999));  // never written
  const auto results = client.keywrite().get_many_async(keys).get();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), keys.size());
  int hits = 0;
  for (std::size_t i = 0; i + 1 < results->size(); ++i) {
    const auto& value = (*results)[i];
    if (value && common::load_u32(value->data()) == ((3 * i) ^ 0x5A)) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 98);
  EXPECT_FALSE(results->back().has_value());
}

TEST(ClusterRuntime, CounterAndEventFuturesResolve) {
  Client client = Client::cluster(cluster_config(2, 2));
  net::FiveTuple flow{0x0A000001, 0x0B000001, 1234, 443, 6};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.counters().add(flow_key(flow), 4).ok());
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.list(5).append_u32(i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto counter = client.counters().get_async(flow_key(flow)).get();
  ASSERT_TRUE(counter.ok());
  EXPECT_GE(*counter, 12u);  // CMS: >= truth
  const auto events = client.events(5).max(6).run();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->entries.size(), 6u);
  EXPECT_EQ(common::load_u32(events->entries[0].data()), 0u);
  EXPECT_EQ(common::load_u32(events->entries[5].data()), 5u);
}

TEST(ClusterRuntime, QueriesRunConcurrentlyWithThreadedIngest) {
  // The TSan acceptance test: point/range queries resolve from
  // per-shard snapshots on their own threads while the threaded ingest
  // pipelines keep writing store memory. Any cross-thread read of live
  // store state would be a data race; snapshots make it race-free.
  Client client = Client::cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate,
      collector::ThreadMode::kThreaded));

  std::vector<std::future<Expected<common::Bytes>>> pending;
  std::uint64_t next_id = 0;
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 50; ++i, ++next_id) {
      ASSERT_TRUE(client.keywrite()
                      .put_u32(key_of(next_id),
                               static_cast<std::uint32_t>(next_id * 7 + 1))
                      .ok());
    }
    // Queries for keys from earlier rounds, issued while this round's
    // reports are still in flight through the SPSC queues.
    if (round > 0) {
      const std::uint64_t probe = (round - 1) * 50;
      pending.push_back(client.keywrite().get_async(key_of(probe)));
      pending.push_back(client.keywrite().get_async(key_of(probe + 49)));
    }
  }
  int hits = 0;
  for (auto& future : pending) {
    if (future.get().ok()) ++hits;
  }
  // Every probed key was flushed by its snapshot barrier before the
  // query resolved.
  EXPECT_EQ(hits, static_cast<int>(pending.size()));
  client.stop();
  EXPECT_EQ(client.stats().ingest.reports_in, 2u * 1000u);  // both replicas
}

// ------------------------------------------------------ worker pinning

TEST(ClusterRuntime, PinnedWorkersReportAffinity) {
  auto config = cluster_config(1, 2);
  config.host.thread_mode = collector::ThreadMode::kThreaded;
  config.host.pin_workers = true;
  config.host.worker_cores = {0, 0};  // core 0 always exists
  Client client = Client::cluster(config);
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(key_of(id), 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  ClusterRuntime& cluster = *client.cluster_runtime();
#if defined(__linux__)
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 2u);
#else
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 0u);
#endif
  EXPECT_EQ(cluster.host(0).stats().reports_in, 100u);
}

TEST(ClusterRuntime, UnpinnedIsTheDefaultNoOp) {
  Client client = Client::cluster(cluster_config(
      1, 2, translator::PartitionPolicy::kByKeyHash,
      collector::ThreadMode::kThreaded));
  ASSERT_TRUE(client.keywrite().put_u32(key_of(1), 1).ok());
  ASSERT_TRUE(client.flush().ok());
  ClusterRuntime& cluster = *client.cluster_runtime();
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 0u);
}

// ------------------------------------- translator per-host connections

TEST(Translator, PerHostConnectionsKeepIndependentPsns) {
  // Two collector hosts, one translator: each connection tracks its own
  // destination QPN and PSN, and ACK feedback resynchronizes only the
  // host it came from.
  collector::RdmaService host0, host1;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 10;
  host0.enable_keywrite(kw);
  host1.enable_keywrite(kw);
  rdma::ConnectRequest req;
  req.requester_qpn = 0x70;
  req.start_psn = 0x1000;
  const auto accept0 = host0.accept(req);
  req.start_psn = 0x2000;
  const auto accept1 = host1.accept(req);

  translator::Translator translator(translator::TranslatorConfig{},
                                    accept0.responder_qpn, accept0.start_psn,
                                    accept0);
  const std::uint32_t h1 = translator.add_host_connection(accept1);
  ASSERT_EQ(h1, 1u);
  EXPECT_EQ(translator.num_host_connections(), 2u);

  translator::RdmaOp op;
  op.kind = translator::RdmaOp::Kind::kWrite;
  op.remote_va = accept0.regions[0].base_va;
  op.rkey = accept0.regions[0].rkey;
  op.payload = Bytes(8, 0xAB);

  const std::uint32_t psn0 = translator.host_crafter(0).next_psn();
  const std::uint32_t psn1 = translator.host_crafter(1).next_psn();
  EXPECT_EQ(psn0, 0x1000u);
  EXPECT_EQ(psn1, 0x2000u);

  translator.host_crafter(0).craft(op);
  translator.host_crafter(0).craft(op);
  op.remote_va = accept1.regions[0].base_va;
  op.rkey = accept1.regions[0].rkey;
  translator.host_crafter(1).craft(op);

  EXPECT_EQ(translator.host_crafter(0).next_psn(), psn0 + 2);
  EXPECT_EQ(translator.host_crafter(1).next_psn(), psn1 + 1);

  // A sequence-error NAK from host 1 resyncs host 1 only.
  rdma::Aeth nak;
  nak.syndrome = rdma::AethSyndrome::kPsnSeqNak;
  translator.handle_host_ack(1, nak, /*responder_expected_psn=*/0x2000);
  EXPECT_EQ(translator.host_crafter(1).next_psn(), 0x2000u);
  EXPECT_EQ(translator.host_crafter(0).next_psn(), psn0 + 2);
}

}  // namespace
}  // namespace dta

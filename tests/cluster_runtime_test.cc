// ClusterRuntime tests: two-level scale-out (hosts x shards), replica
// failover after a collector death, the async snapshot-based query
// tier (point/range/event futures, concurrent with ingest — the TSan
// target), worker pinning, and the translator's per-host connections.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "dtalib/cluster_runtime.h"
#include "translator/translator.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

proto::ParsedDta keywrite_report(std::uint64_t id, std::uint32_t value,
                                 std::uint8_t redundancy = 2) {
  proto::KeyWriteReport r;
  r.key = key_of(id);
  r.redundancy = redundancy;
  common::put_u32(r.data, value);
  return {proto::DtaHeader{}, std::move(r)};
}

proto::ParsedDta keyincrement_report(std::uint64_t id, std::uint64_t delta) {
  proto::KeyIncrementReport r;
  r.key = key_of(id);
  r.redundancy = 2;
  r.counter = delta;
  return {proto::DtaHeader{}, std::move(r)};
}

proto::ParsedDta append_report(std::uint32_t list, std::uint32_t value) {
  proto::AppendReport r;
  r.list_id = list;
  r.entry_size = 4;
  Bytes e;
  common::put_u32(e, value);
  r.entries.push_back(std::move(e));
  return {proto::DtaHeader{}, std::move(r)};
}

ClusterRuntimeConfig cluster_config(
    std::uint32_t hosts, std::uint32_t shards,
    translator::PartitionPolicy policy =
        translator::PartitionPolicy::kByKeyHash,
    collector::ThreadMode mode = collector::ThreadMode::kInline) {
  ClusterRuntimeConfig config;
  config.num_hosts = hosts;
  config.policy = policy;
  config.host.num_shards = shards;
  config.host.thread_mode = mode;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.host.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.host.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 16;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.host.append = ap;
  config.host.append_batch_size = 1;
  return config;
}

// ------------------------------------------------------------ scale-out

TEST(ClusterRuntime, AggregateRateScalesHostsTimesShards) {
  // §7's scaling claim composed across both tiers: every shard of every
  // host owns an independent NIC message unit, so a 4x4 kByKeyHash
  // cluster models ~16x the 1x1 deployment (exact up to shard balance;
  // with CRC routing every shard is hit at these key counts).
  auto one = cluster_config(1, 1);
  ClusterRuntime single(one);
  auto sixteen = cluster_config(4, 4);
  ClusterRuntime cluster(sixteen);

  for (std::uint64_t id = 0; id < 8000; ++id) {
    single.submit(keywrite_report(id, 1, /*redundancy=*/1));
    cluster.submit(keywrite_report(id, 1, /*redundancy=*/1));
  }
  single.flush();
  cluster.flush();

  const double base = single.modeled_aggregate_verbs_per_sec();
  ASSERT_GT(base, 0.0);
  const double ratio = cluster.modeled_aggregate_verbs_per_sec() / base;
  EXPECT_NEAR(ratio, 16.0, 16.0 * 0.02);

  // All 16 shard NICs took part.
  for (std::uint32_t h = 0; h < 4; ++h) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_GT(cluster.host(h).shard(s).stats().verbs_executed, 0u)
          << "host " << h << " shard " << s;
    }
  }
}

TEST(ClusterRuntime, KeyHashClusterAnswersEveryKey) {
  ClusterRuntime cluster(cluster_config(3, 2));
  for (std::uint64_t id = 0; id < 600; ++id) {
    cluster.submit(keywrite_report(id, static_cast<std::uint32_t>(id * 3)));
  }
  cluster.flush();
  int hits = 0;
  for (std::uint64_t id = 0; id < 600; ++id) {
    auto value = cluster.query().value_of(key_of(id)).get();
    if (value && common::load_u32(value->data()) == id * 3) ++hits;
  }
  EXPECT_GE(hits, 598);  // slot collisions may cost a key or two
}

TEST(ClusterRuntime, ByDestinationIpRoutesOnAddress) {
  ClusterRuntime cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kByDestinationIp));
  for (std::uint64_t id = 0; id < 100; ++id) {
    cluster.submit(keywrite_report(id, 7), cluster.host_ip(1));
  }
  cluster.flush();
  EXPECT_EQ(cluster.host(0).stats().reports_in, 0u);
  EXPECT_EQ(cluster.host(1).stats().reports_in, 100u);
  // The key still determines the host-internal shard, and queries (which
  // fan out over hosts under this policy) find the values.
  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    if (cluster.query().value_of(key_of(id)).get()) ++hits;
  }
  EXPECT_GE(hits, 99);
}

TEST(ClusterRuntime, HostIpAddressesExactlyThatHost) {
  // Regression: with 3 hosts the raw base address is not divisible by
  // the host count, so an unnormalized modulo would rotate the mapping
  // (host_ip(0) -> host 1). host_ip(h) must deliver to host h exactly.
  ClusterRuntime cluster(cluster_config(
      3, 2, translator::PartitionPolicy::kByDestinationIp));
  for (std::uint32_t h = 0; h < 3; ++h) {
    for (std::uint64_t id = 0; id < 10; ++id) {
      cluster.submit(keywrite_report(h * 100 + id, 1), cluster.host_ip(h));
    }
  }
  cluster.flush();
  for (std::uint32_t h = 0; h < 3; ++h) {
    EXPECT_EQ(cluster.host(h).stats().reports_in, 10u) << "host " << h;
  }
}

TEST(ClusterRuntime, ByDestinationIpEventsReadTheAddressedHost) {
  // Only the addressed host holds the list under kByDestinationIp; the
  // event query must follow the same mapping as submit, not fall back
  // to an arbitrary live host with an untouched (zero) ring.
  ClusterRuntime cluster(cluster_config(
      3, 2, translator::PartitionPolicy::kByDestinationIp));
  for (std::uint32_t i = 0; i < 4; ++i) {
    cluster.submit(append_report(2, 70 + i), cluster.host_ip(1));
  }
  cluster.flush();
  const auto events = cluster.query().events(2, 4, cluster.host_ip(1)).get();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(common::load_u32(events[i].data()), 70 + i);
  }
}

// ----------------------------------------------------------- failover

TEST(ClusterRuntime, ReplicatePointQuerySurvivesHostDeath) {
  ClusterRuntime cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    cluster.submit(keywrite_report(id, static_cast<std::uint32_t>(id + 5)));
  }
  cluster.flush();

  cluster.fail_host(0);
  EXPECT_EQ(cluster.live_hosts(), 1u);

  // Every key is still answerable — the merge layer asks the survivor.
  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    auto value = cluster.query().value_of(key_of(id)).get();
    if (value && common::load_u32(value->data()) == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);

  // New reports only land on the survivor.
  cluster.submit(keywrite_report(1000, 99));
  cluster.flush();
  EXPECT_EQ(cluster.host(0).stats().reports_in, 100u);
  EXPECT_EQ(cluster.host(1).stats().reports_in, 101u);

  // Aggregate capacity reflects the loss (same workload, no failure:
  // twice the live shard NICs).
  ClusterRuntime healthy(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    healthy.submit(keywrite_report(id, static_cast<std::uint32_t>(id + 5)));
  }
  healthy.flush();
  EXPECT_LT(cluster.modeled_aggregate_verbs_per_sec(),
            healthy.modeled_aggregate_verbs_per_sec());
}

TEST(ClusterRuntime, ReplicateEventQueryFailsOver) {
  ClusterRuntime cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint32_t i = 0; i < 5; ++i) {
    cluster.submit(append_report(3, 30 + i));
  }
  cluster.flush();
  cluster.fail_host(0);
  const auto events = cluster.query().events(3, 5).get();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(common::load_u32(events[i].data()), 30 + i);
  }
}

TEST(ClusterRuntime, KeyHashDeadOwnerLosesOnlyItsPartition) {
  ClusterRuntime cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 200; ++id) {
    cluster.submit(keywrite_report(id, 1));
  }
  cluster.flush();
  cluster.fail_host(0);
  int answered = 0, lost = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const auto owner = cluster.selector().owner_host(key_of(id));
    ASSERT_TRUE(owner.has_value());
    const bool hit = cluster.query().value_of(key_of(id)).get().has_value();
    if (*owner == 0) {
      EXPECT_FALSE(hit) << "key " << id << " answered by a dead host";
      ++lost;
    } else if (hit) {
      ++answered;
    }
  }
  EXPECT_GT(answered, 50);
  EXPECT_GT(lost, 50);
}

TEST(ClusterRuntime, FailoverDoesNotServeDeadHostCachedSnapshots) {
  // Cluster-tier cache coherence: queries before the failure populate
  // every host's snapshot cache; fail_host must drop the dead host's
  // entries, and the failover path must answer every key from the
  // survivor without ever consulting the dead host's cache again.
  ClusterRuntime cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate));
  for (std::uint64_t id = 0; id < 100; ++id) {
    cluster.submit(keywrite_report(id, static_cast<std::uint32_t>(id + 5)));
  }
  cluster.flush();
  for (std::uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE(cluster.query().value_of(key_of(id)).get().has_value());
  }
  ASSERT_GT(cluster.host(0).snapshot_cache().cached_count(), 0u);
  const auto before = cluster.host(0).snapshot_cache().stats();

  cluster.fail_host(0);
  EXPECT_EQ(cluster.host(0).snapshot_cache().cached_count(), 0u)
      << "dead host still holds cached snapshots";

  int hits = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    const auto value = cluster.query().value_of(key_of(id)).get();
    if (value && common::load_u32(value->data()) == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);

  const auto after = cluster.host(0).snapshot_cache().stats();
  EXPECT_EQ(after.hits, before.hits)
      << "query tier served a snapshot from the dead host's cache";
  EXPECT_EQ(after.misses, before.misses)
      << "query tier re-copied from the dead host";
  EXPECT_EQ(cluster.host(0).snapshot_cache().cached_count(), 0u);
}

TEST(ClusterRuntime, RangeQueryPinsOneSnapshotPerShard) {
  // A multi-shard range query must route every sub-range through one
  // generation pin: however many keys land on a shard, the shard is
  // copied at most once per query — and an identical repeat of the
  // query is answered entirely from the cache.
  ClusterRuntime cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 300; ++id) {
    cluster.submit(keywrite_report(id, static_cast<std::uint32_t>(id)));
  }
  cluster.flush();

  std::vector<TelemetryKey> keys;
  for (std::uint64_t id = 0; id < 300; ++id) keys.push_back(key_of(id));
  const auto first = cluster.query().values_of(keys).get();
  ASSERT_EQ(first.size(), keys.size());

  std::uint64_t copies = 0;
  for (std::uint32_t h = 0; h < 2; ++h) {
    const auto stats = cluster.host(h).snapshot_cache().stats();
    EXPECT_LE(stats.misses, 2u) << "host " << h
                                << " re-snapshotted a shard mid-query";
    copies += stats.misses;
  }
  EXPECT_LE(copies, 4u);  // at most one copy per (host, shard)

  const auto second = cluster.query().values_of(keys).get();
  ASSERT_EQ(second.size(), keys.size());
  std::uint64_t copies_after = 0;
  for (std::uint32_t h = 0; h < 2; ++h) {
    copies_after += cluster.host(h).snapshot_cache().stats().misses;
  }
  EXPECT_EQ(copies_after, copies)
      << "unchanged shards were re-copied by the second query";
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].has_value(), second[i].has_value()) << "key " << i;
  }
}

// ------------------------------------------------------- async queries

TEST(ClusterRuntime, RangeQueryResolvesBatchInInputOrder) {
  ClusterRuntime cluster(cluster_config(2, 2));
  for (std::uint64_t id = 0; id < 300; ++id) {
    cluster.submit(keywrite_report(id, static_cast<std::uint32_t>(id ^ 0x5A)));
  }
  cluster.flush();
  std::vector<TelemetryKey> keys;
  for (std::uint64_t id = 0; id < 300; id += 3) keys.push_back(key_of(id));
  keys.push_back(key_of(999999));  // never written
  const auto results = cluster.query().values_of(keys).get();
  ASSERT_EQ(results.size(), keys.size());
  int hits = 0;
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    if (results[i] &&
        common::load_u32(results[i]->data()) == ((3 * i) ^ 0x5A)) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 98);
  EXPECT_FALSE(results.back().has_value());
}

TEST(ClusterRuntime, CounterAndEventFuturesResolve) {
  ClusterRuntime cluster(cluster_config(2, 2));
  net::FiveTuple flow{0x0A000001, 0x0B000001, 1234, 443, 6};
  const auto bytes = flow.to_bytes();
  const auto key =
      TelemetryKey::from(ByteSpan(bytes.data(), bytes.size()));
  for (int i = 0; i < 3; ++i) {
    proto::KeyIncrementReport r;
    r.key = key;
    r.redundancy = 2;
    r.counter = 4;
    cluster.submit({proto::DtaHeader{}, r});
  }
  for (std::uint32_t i = 0; i < 6; ++i) cluster.submit(append_report(5, i));
  cluster.flush();
  EXPECT_GE(cluster.query().flow_counter(flow).get(), 12u);  // CMS: >= truth
  const auto events = cluster.query().events(5, 6).get();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(common::load_u32(events[0].data()), 0u);
  EXPECT_EQ(common::load_u32(events[5].data()), 5u);
}

TEST(ClusterRuntime, QueriesRunConcurrentlyWithThreadedIngest) {
  // The TSan acceptance test: point/range queries resolve from
  // per-shard snapshots on their own threads while the threaded ingest
  // pipelines keep writing store memory. Any cross-thread read of live
  // store state would be a data race; snapshots make it race-free.
  ClusterRuntime cluster(cluster_config(
      2, 2, translator::PartitionPolicy::kReplicate,
      collector::ThreadMode::kThreaded));

  std::vector<std::future<std::optional<common::Bytes>>> pending;
  std::uint64_t next_id = 0;
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 50; ++i, ++next_id) {
      cluster.submit(keywrite_report(
          next_id, static_cast<std::uint32_t>(next_id * 7 + 1)));
    }
    // Queries for keys from earlier rounds, issued while this round's
    // reports are still in flight through the SPSC queues.
    if (round > 0) {
      const std::uint64_t probe = (round - 1) * 50;
      pending.push_back(cluster.query().value_of(key_of(probe)));
      pending.push_back(cluster.query().value_of(key_of(probe + 49)));
    }
  }
  int hits = 0;
  for (auto& future : pending) {
    if (future.get()) ++hits;
  }
  // Every probed key was flushed by its snapshot barrier before the
  // query resolved.
  EXPECT_EQ(hits, static_cast<int>(pending.size()));
  cluster.stop();
  EXPECT_EQ(cluster.stats().reports_in, 2u * 1000u);  // both replicas
}

// ------------------------------------------------------ worker pinning

TEST(ClusterRuntime, PinnedWorkersReportAffinity) {
  auto config = cluster_config(1, 2);
  config.host.thread_mode = collector::ThreadMode::kThreaded;
  config.host.pin_workers = true;
  config.host.worker_cores = {0, 0};  // core 0 always exists
  ClusterRuntime cluster(config);
  for (std::uint64_t id = 0; id < 100; ++id) {
    cluster.submit(keywrite_report(id, 1));
  }
  cluster.flush();
#if defined(__linux__)
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 2u);
#else
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 0u);
#endif
  EXPECT_EQ(cluster.host(0).stats().reports_in, 100u);
}

TEST(ClusterRuntime, UnpinnedIsTheDefaultNoOp) {
  ClusterRuntime cluster(cluster_config(
      1, 2, translator::PartitionPolicy::kByKeyHash,
      collector::ThreadMode::kThreaded));
  cluster.submit(keywrite_report(1, 1));
  cluster.flush();
  EXPECT_EQ(cluster.host(0).pipeline().stats().workers_pinned, 0u);
}

// ------------------------------------- translator per-host connections

TEST(Translator, PerHostConnectionsKeepIndependentPsns) {
  // Two collector hosts, one translator: each connection tracks its own
  // destination QPN and PSN, and ACK feedback resynchronizes only the
  // host it came from.
  collector::RdmaService host0, host1;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 10;
  host0.enable_keywrite(kw);
  host1.enable_keywrite(kw);
  rdma::ConnectRequest req;
  req.requester_qpn = 0x70;
  req.start_psn = 0x1000;
  const auto accept0 = host0.accept(req);
  req.start_psn = 0x2000;
  const auto accept1 = host1.accept(req);

  translator::Translator translator(translator::TranslatorConfig{},
                                    accept0.responder_qpn, accept0.start_psn,
                                    accept0);
  const std::uint32_t h1 = translator.add_host_connection(accept1);
  ASSERT_EQ(h1, 1u);
  EXPECT_EQ(translator.num_host_connections(), 2u);

  translator::RdmaOp op;
  op.kind = translator::RdmaOp::Kind::kWrite;
  op.remote_va = accept0.regions[0].base_va;
  op.rkey = accept0.regions[0].rkey;
  op.payload = Bytes(8, 0xAB);

  const std::uint32_t psn0 = translator.host_crafter(0).next_psn();
  const std::uint32_t psn1 = translator.host_crafter(1).next_psn();
  EXPECT_EQ(psn0, 0x1000u);
  EXPECT_EQ(psn1, 0x2000u);

  translator.host_crafter(0).craft(op);
  translator.host_crafter(0).craft(op);
  op.remote_va = accept1.regions[0].base_va;
  op.rkey = accept1.regions[0].rkey;
  translator.host_crafter(1).craft(op);

  EXPECT_EQ(translator.host_crafter(0).next_psn(), psn0 + 2);
  EXPECT_EQ(translator.host_crafter(1).next_psn(), psn1 + 1);

  // A sequence-error NAK from host 1 resyncs host 1 only.
  rdma::Aeth nak;
  nak.syndrome = rdma::AethSyndrome::kPsnSeqNak;
  translator.handle_host_ack(1, nak, /*responder_expected_psn=*/0x2000);
  EXPECT_EQ(translator.host_crafter(1).next_psn(), 0x2000u);
  EXPECT_EQ(translator.host_crafter(0).next_psn(), psn0 + 2);
}

}  // namespace
}  // namespace dta

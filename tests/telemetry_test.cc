#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "telemetry/int_gen.h"
#include "telemetry/marple_gen.h"
#include "telemetry/netseer_gen.h"
#include "telemetry/rates.h"
#include "telemetry/records.h"
#include "telemetry/trace.h"

namespace dta::telemetry {
namespace {

// ----------------------------------------------------------------- trace

TEST(Trace, DeterministicForSeed) {
  TraceConfig c;
  c.seed = 5;
  TraceGenerator a(c), b(c);
  for (int i = 0; i < 1000; ++i) {
    const TracePacket pa = a.next();
    const TracePacket pb = b.next();
    EXPECT_EQ(pa.flow_index, pb.flow_index);
    EXPECT_EQ(pa.arrival_ns, pb.arrival_ns);
  }
}

TEST(Trace, FlowMappingStable) {
  TraceConfig c;
  TraceGenerator gen(c);
  const net::FiveTuple t1 = gen.flow_at(42);
  const net::FiveTuple t2 = gen.flow_at(42);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1 == gen.flow_at(43));
}

TEST(Trace, ArrivalsMonotonic) {
  TraceGenerator gen(TraceConfig{});
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const TracePacket p = gen.next();
    EXPECT_GT(p.arrival_ns, last);
    last = p.arrival_ns;
  }
}

TEST(Trace, PopularityIsSkewed) {
  TraceConfig c;
  c.num_flows = 10000;
  TraceGenerator gen(c);
  std::unordered_map<std::uint32_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[gen.next().flow_index]++;
  // Top flow should dwarf the median flow under Zipf ~1.05.
  int max_count = 0;
  for (auto& [f, n] : counts) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 1000);
}

TEST(Trace, RateMatchesSwitchLoad) {
  // 6.4T at 40% with 850B packets ~ 376 Mpps -> mean gap ~2.66ns.
  TraceGenerator gen(TraceConfig{});
  std::uint64_t last = 0;
  constexpr int kPackets = 100000;
  for (int i = 0; i < kPackets; ++i) last = gen.next().arrival_ns;
  const double pps = kPackets * 1e9 / static_cast<double>(last);
  EXPECT_NEAR(pps, 376e6, 80e6);
}

TEST(Trace, FlowSizesHeavyTailed) {
  TraceGenerator gen(TraceConfig{});
  std::uint64_t small = 0, huge = 0;
  for (std::uint32_t f = 0; f < 10000; ++f) {
    const std::uint32_t size = gen.flow_size_packets(f);
    if (size <= 10) ++small;
    if (size >= 1000) ++huge;
  }
  EXPECT_GT(small, 5000u);  // most flows are mice
  EXPECT_GT(huge, 10u);     // elephants exist
  EXPECT_LT(huge, 500u);    // but are rare
}

TEST(Trace, FlowStartFlaggedOnce) {
  TraceConfig c;
  c.num_flows = 100;
  TraceGenerator gen(c);
  std::set<std::uint32_t> started;
  for (int i = 0; i < 5000; ++i) {
    const TracePacket p = gen.next();
    if (p.flow_start) {
      EXPECT_TRUE(started.insert(p.flow_index).second)
          << "flow " << p.flow_index << " started twice";
    }
  }
}

// ------------------------------------------------------------------- INT

TEST(IntGen, SamplingRateRespected) {
  TraceGenerator trace(TraceConfig{});
  IntConfig ic;
  ic.sampling_rate = 0.01;
  IntGenerator gen(ic, &trace);
  for (int i = 0; i < 500; ++i) gen.next_postcards();
  const double rate = 500.0 / static_cast<double>(gen.packets_examined());
  EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(IntGen, PostcardsCoverPathInOrder) {
  TraceGenerator trace(TraceConfig{});
  IntGenerator gen(IntConfig{}, &trace);
  for (int i = 0; i < 100; ++i) {
    const auto cards = gen.next_postcards();
    ASSERT_GE(cards.size(), 2u);
    ASSERT_LE(cards.size(), 5u);
    for (std::uint8_t h = 0; h < cards.size(); ++h) {
      EXPECT_EQ(cards[h].hop, h);
      EXPECT_EQ(cards[h].path_len, cards.size());
      EXPECT_EQ(cards[h].flow, cards[0].flow);
    }
  }
}

TEST(IntGen, PathDeterministicPerFlow) {
  TraceGenerator trace(TraceConfig{});
  IntGenerator gen(IntConfig{}, &trace);
  const net::FiveTuple flow{0x0A000001, 0x0A000002, 1000, 80, 6};
  EXPECT_EQ(gen.path_of(flow), gen.path_of(flow));
}

TEST(IntGen, SwitchIdsWithinValueSpace) {
  TraceGenerator trace(TraceConfig{});
  IntConfig ic;
  ic.switch_id_space = 1 << 10;
  IntGenerator gen(ic, &trace);
  for (int i = 0; i < 50; ++i) {
    for (const auto id : gen.next_path_trace().switch_ids) {
      EXPECT_GT(id, 0u);
      EXPECT_LT(id, 1u << 10);
    }
  }
}

TEST(IntGen, PathLengthDistributionHasLocality) {
  TraceGenerator trace(TraceConfig{});
  IntGenerator gen(IntConfig{}, &trace);
  int short_paths = 0, full_paths = 0;
  for (int i = 0; i < 300; ++i) {
    const auto p = gen.next_path_trace();
    if (p.switch_ids.size() == 2) ++short_paths;
    if (p.switch_ids.size() == 5) ++full_paths;
  }
  EXPECT_GT(short_paths, 0);
  EXPECT_GT(full_paths, 0);
}

// ---------------------------------------------------------------- Marple

TEST(Marple, FlowletsFireOnGaps) {
  TraceGenerator trace(TraceConfig{});
  MarpleConfig mc;
  mc.flowlet_gap_ns = 1;  // everything is a gap
  MarpleGenerator gen(mc, &trace);
  int flowlets = 0;
  for (int i = 0; i < 20000; ++i) {
    if (gen.step().flowlet) ++flowlets;
  }
  EXPECT_GT(flowlets, 100);
}

TEST(Marple, NoFlowletsWithoutGaps) {
  TraceGenerator trace(TraceConfig{});
  MarpleConfig mc;
  mc.flowlet_gap_ns = ~0ull >> 1;  // gap never exceeded
  MarpleGenerator gen(mc, &trace);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(gen.step().flowlet.has_value());
  }
}

TEST(Marple, LossyFlowsDetected) {
  TraceConfig tc;
  tc.num_flows = 50;  // few flows -> each sees many packets
  TraceGenerator trace(tc);
  MarpleConfig mc;
  mc.congested_flow_fraction = 0.3;
  mc.congested_loss_rate = 0.10;
  mc.lossy_report_threshold = 0.02;
  MarpleGenerator gen(mc, &trace);
  int lossy = 0;
  for (int i = 0; i < 50000; ++i) {
    if (gen.step().lossy_flow) ++lossy;
  }
  EXPECT_GT(lossy, 3);
  EXPECT_LE(lossy, 50);  // at most once per flow
}

TEST(Marple, LossyFlowReportedOnce) {
  TraceConfig tc;
  tc.num_flows = 10;
  TraceGenerator trace(tc);
  MarpleConfig mc;
  mc.congested_flow_fraction = 1.0;  // every flow is lossy
  mc.congested_loss_rate = 0.5;
  MarpleGenerator gen(mc, &trace);
  std::set<std::uint64_t> reported;
  for (int i = 0; i < 20000; ++i) {
    auto r = gen.step();
    if (r.lossy_flow) {
      EXPECT_TRUE(
          reported.insert(net::flow_hash64(r.lossy_flow->flow)).second);
    }
  }
  EXPECT_GT(reported.size(), 5u);
}

TEST(Marple, TcpTimeoutsOnlyOnTcp) {
  TraceGenerator trace(TraceConfig{});
  MarpleConfig mc;
  mc.tcp_timeout_ns = 1;
  MarpleGenerator gen(mc, &trace);
  for (int i = 0; i < 20000; ++i) {
    auto r = gen.step();
    if (r.tcp_timeout) EXPECT_EQ(r.tcp_timeout->flow.protocol, 6);
  }
}

// --------------------------------------------------------------- NetSeer

TEST(NetSeer, EventsCarryCause) {
  TraceGenerator trace(TraceConfig{});
  NetSeerGenerator gen(NetSeerConfig{}, &trace);
  for (int i = 0; i < 100; ++i) {
    const auto ev = gen.next_event();
    EXPECT_LT(ev.reason, 3);
    EXPECT_GT(ev.packet_seq, 0u);
  }
}

TEST(NetSeer, LossRateApproximatesConfig) {
  TraceGenerator trace(TraceConfig{});
  NetSeerConfig nc;
  nc.loss_rate = 0.01;
  nc.burst_continue_prob = 0.0;  // no bursts: clean Bernoulli
  NetSeerGenerator gen(nc, &trace);
  for (int i = 0; i < 300; ++i) gen.next_event();
  const double rate = 300.0 / static_cast<double>(gen.packets_examined());
  EXPECT_NEAR(rate, 0.01, 0.003);
}

TEST(NetSeer, BurstsProduceClusters) {
  TraceGenerator trace(TraceConfig{});
  NetSeerConfig nc;
  nc.loss_rate = 0.001;
  nc.burst_continue_prob = 0.9;
  NetSeerGenerator gen(nc, &trace);
  int consecutive = 0;
  std::uint32_t last_seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto ev = gen.next_event();
    if (ev.packet_seq == last_seq + 1) ++consecutive;
    last_seq = ev.packet_seq;
  }
  EXPECT_GT(consecutive, 500);  // bursts dominate
}

// -------------------------------------------------- record -> DTA mapping

TEST(Records, PostcardMapping) {
  IntPostcard card;
  card.flow = {1, 2, 3, 4, 6};
  card.hop = 2;
  card.path_len = 5;
  card.value = 0x1234;
  const auto r = card.to_dta(2);
  EXPECT_EQ(r.hop, 2);
  EXPECT_EQ(r.value, 0x1234u);
  EXPECT_EQ(r.key.length, 13);
  EXPECT_EQ(r.redundancy, 2);
}

TEST(Records, PathTracePacksFiveIds) {
  IntPathTrace trace;
  trace.flow = {1, 2, 3, 4, 6};
  trace.switch_ids = {10, 20, 30};
  const auto r = trace.to_dta();
  ASSERT_EQ(r.data.size(), 20u);  // always 5 x 4B
  EXPECT_EQ(common::load_u32(r.data.data()), 10u);
  EXPECT_EQ(common::load_u32(r.data.data() + 8), 30u);
  EXPECT_EQ(common::load_u32(r.data.data() + 12), 0u);  // padded
}

TEST(Records, LossyFlowBucketsByLossRate) {
  MarpleLossyFlow low;
  low.loss_rate = 0.0005;
  MarpleLossyFlow high;
  high.loss_rate = 0.5;
  EXPECT_LT(low.to_dta(10, 4).list_id, high.to_dta(10, 4).list_id);
  EXPECT_GE(low.to_dta(10, 4).list_id, 10u);
  EXPECT_LT(high.to_dta(10, 4).list_id, 14u);
}

TEST(Records, NetSeerEntryIs18Bytes) {
  NetSeerLossEvent ev;
  ev.flow = {1, 2, 3, 4, 6};
  ev.packet_seq = 99;
  ev.reason = 1;
  const auto r = ev.to_dta(0);
  EXPECT_EQ(r.entry_size, 18);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].size(), 18u);
}

TEST(Records, MarpleFlowletEntryIs17Bytes) {
  MarpleFlowlet f;
  f.flow = {1, 2, 3, 4, 6};
  f.packets = 12;
  EXPECT_EQ(f.to_dta(0).entry_size, 17);
}

TEST(Records, HostCounterUsesSourceIpKey) {
  MarpleHostCounter c;
  c.src_ip = 0x0A000001;
  c.count = 5;
  const auto r = c.to_dta();
  EXPECT_EQ(r.key.length, 4);
  EXPECT_EQ(r.counter, 5u);
}

// ---------------------------------------------------------------- Table 1

TEST(Table1, IntPostcardRateMatchesPaper) {
  const auto rows = table1_rates();
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0].system, "INT Postcards");
  // 6.4T * 40% / 84B * 0.5% = 19.05 Mpps, the paper's 19M.
  EXPECT_NEAR(rows[0].reports_per_sec, rows[0].paper_reports_per_sec,
              rows[0].paper_reports_per_sec * 0.05);
}

TEST(Table1, AllRowsWithin15PercentOfPaper) {
  for (const auto& row : table1_rates()) {
    EXPECT_NEAR(row.reports_per_sec, row.paper_reports_per_sec,
                row.paper_reports_per_sec * 0.15)
        << row.system << " / " << row.metric;
  }
}

TEST(Table1, SwitchPpsArithmetic) {
  SwitchModel sw;
  EXPECT_NEAR(switch_pps_min_packets(sw), 3.81e9, 0.05e9);
  EXPECT_NEAR(switch_pps_avg_packets(sw), 376e6, 5e6);
}

}  // namespace
}  // namespace dta::telemetry

// Wire-path round-trips against the collector stores themselves — the
// typed telemetry records of Table 2 reported through the full fabric
// and queried straight from the per-primitive stores — plus the
// checksum-width (b) knob, including the empirical wrong-output
// measurement that only short checksums make observable (Appendix
// A.5's trade-off). (The application-facing query surface is
// dta::Client; see client_api_test.cc.)
#include <gtest/gtest.h>

#include "dta/report_builders.h"
#include "dtalib/fabric.h"
#include "telemetry/records.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

TelemetryKey key_of_flow(const net::FiveTuple& flow) {
  const auto bytes = flow.to_bytes();
  return TelemetryKey::from(ByteSpan(bytes.data(), bytes.size()));
}

FabricConfig store_config() {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 15;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 13;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 512; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  collector::AppendSetup ap;
  ap.num_lists = 4;
  ap.entries_per_list = 256;
  ap.entry_bytes = 18;
  config.append = ap;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  config.translator.append_batch_size = 1;
  return config;
}

net::FiveTuple flow_of(std::uint32_t i) {
  return {0x0A000000 + i, 0x0B000000 + i,
          static_cast<std::uint16_t>(1000 + i), 443, 6};
}

TEST(StoreQuery, FlowMetricRoundTrip) {
  Fabric fabric(store_config());
  auto& service = fabric.collector().service();

  telemetry::MarpleTcpTimeout record;
  record.flow = flow_of(1);
  record.timeouts = 9;
  fabric.report(record.to_dta(2));

  const auto result = service.keywrite()->query(key_of_flow(flow_of(1)), 2);
  ASSERT_EQ(result.status, collector::QueryStatus::kHit);
  ASSERT_GE(result.value.size(), 4u);
  EXPECT_EQ(common::load_u32(result.value.data()), 9u);
  EXPECT_NE(service.keywrite()->query(key_of_flow(flow_of(999)), 2).status,
            collector::QueryStatus::kHit);
}

TEST(StoreQuery, FlowPathRoundTrip) {
  Fabric fabric(store_config());
  auto& service = fabric.collector().service();

  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    telemetry::IntPostcard card;
    card.flow = flow_of(2);
    card.hop = hop;
    card.path_len = 5;
    card.value = 40 + hop;
    fabric.report(card.to_dta(1));
  }
  const auto result = service.postcarding()->query(key_of_flow(flow_of(2)), 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values, (std::vector<std::uint32_t>{40, 41, 42, 43, 44}));
}

TEST(StoreQuery, CountersAccumulate) {
  Fabric fabric(store_config());
  auto& service = fabric.collector().service();

  telemetry::TurboFlowRecord rec;
  rec.flow = flow_of(3);
  rec.packets = 25;
  fabric.report(rec.to_dta(2));
  fabric.report(rec.to_dta(2));
  EXPECT_EQ(service.keyincrement()->query(key_of_flow(flow_of(3)), 2), 50u);

  telemetry::MarpleHostCounter host;
  host.src_ip = 0xC0A80101;
  host.count = 7;
  fabric.report(host.to_dta(2));
  Bytes hk;
  common::put_u32(hk, 0xC0A80101);
  EXPECT_EQ(
      service.keyincrement()->query(TelemetryKey::from(ByteSpan(hk)), 2), 7u);
  Bytes miss;
  common::put_u32(miss, 0xC0A80199);
  EXPECT_EQ(
      service.keyincrement()->query(TelemetryKey::from(ByteSpan(miss)), 2),
      0u);
}

TEST(StoreQuery, AppendPollDecodesLossEvents) {
  Fabric fabric(store_config());
  auto& service = fabric.collector().service();

  for (std::uint32_t i = 0; i < 6; ++i) {
    telemetry::NetSeerLossEvent ev;
    ev.flow = flow_of(i);
    ev.packet_seq = 100 + i;
    ev.reason = static_cast<std::uint8_t>(i % 3);
    fabric.report(ev.to_dta(2));
  }
  std::vector<telemetry::NetSeerLossEvent> events;
  for (int i = 0; i < 6; ++i) {
    events.push_back(
        telemetry::NetSeerLossEvent::from_entry(service.append()->poll(2)));
  }
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].packet_seq, 100u);
  EXPECT_EQ(events[5].reason, 2);
  EXPECT_EQ(events[3].flow, flow_of(3));
}

// -------------------------------------------------- checksum width (b)

// With b=8 checksums, overwritten slots collide with the query key's
// checksum with probability 2^-8 — wrong outputs become measurable at
// high load, exactly as eq. (4) predicts; with b=32 they never appear.
class ChecksumWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChecksumWidthTest, WrongOutputRateTracksEq4) {
  const unsigned bits = GetParam();
  constexpr std::uint64_t kSlots = 1 << 14;
  constexpr int kProbes = 3000;

  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = kSlots;
  kw.value_bytes = 4;
  kw.checksum_bits = bits;
  config.keywrite = kw;
  Fabric fabric(config);

  auto write = [&](std::uint64_t id) {
    proto::KeyWriteReport r;
    r.key = key_of(id);
    r.redundancy = 1;
    common::put_u32(r.data, static_cast<std::uint32_t>(id));
    fabric.report_direct(reports::wrap(r));
  };

  for (std::uint64_t i = 0; i < kProbes; ++i) write(i);
  // alpha = 2: every probe slot is almost surely overwritten.
  for (std::uint64_t i = 0; i < 2 * kSlots; ++i) write((1ull << 32) | i);

  int wrong = 0;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    const auto result =
        fabric.collector().service().keywrite()->query(key_of(i), 1);
    if (result.status == collector::QueryStatus::kHit &&
        common::load_u32(result.value.data()) != i) {
      ++wrong;
    }
  }

  const double rate = static_cast<double>(wrong) / kProbes;
  if (bits <= 8) {
    // eq.(4) with q~0.86, N=1, b=8: ~3.4e-3. Expect the same order.
    EXPECT_GT(wrong, 0);
    EXPECT_LT(rate, 0.02);
  } else {
    // 16+ bit checksums: wrong outputs must be absent at this scale.
    EXPECT_EQ(wrong, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ChecksumWidthTest,
                         ::testing::Values(8u, 16u, 32u),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dta

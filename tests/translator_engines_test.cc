#include <gtest/gtest.h>

#include "translator/append_engine.h"
#include "translator/crc_unit.h"
#include "translator/keyincrement_engine.h"
#include "translator/keywrite_engine.h"
#include "translator/postcard_cache.h"
#include "translator/rate_limiter.h"

namespace dta::translator {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint32_t id) {
  Bytes b;
  common::put_u32(b, id);
  return TelemetryKey::from(ByteSpan(b));
}

// ------------------------------------------------------------- CRC unit

TEST(CrcUnit, SlotIndexWithinBounds) {
  for (unsigned n = 0; n < 8; ++n) {
    for (std::uint32_t k = 0; k < 1000; ++k) {
      EXPECT_LT(slot_index(n, key_of(k), 977), 977u);
    }
  }
}

TEST(CrcUnit, ReplicasIndexIndependently) {
  // For most keys the N replicas should land in different slots.
  int same = 0;
  for (std::uint32_t k = 0; k < 1000; ++k) {
    if (slot_index(0, key_of(k), 1 << 20) == slot_index(1, key_of(k), 1 << 20))
      ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(CrcUnit, ChecksumDeterministic) {
  EXPECT_EQ(key_checksum(key_of(7)), key_checksum(key_of(7)));
  EXPECT_NE(key_checksum(key_of(7)), key_checksum(key_of(8)));
}

// --------------------------------------------------------- Key-Write engine

class KwEngineTest : public ::testing::Test {
 protected:
  KwEngineTest() {
    geometry_.base_va = 0x1000;
    geometry_.rkey = 0x42;
    geometry_.num_slots = 1 << 16;
    geometry_.value_bytes = 4;
  }
  KeyWriteGeometry geometry_;
};

TEST_F(KwEngineTest, EmitsNWrites) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(1);
  r.redundancy = 3;
  r.data = {1, 2, 3, 4};
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  EXPECT_EQ(ops.size(), 3u);
  EXPECT_EQ(engine.stats().writes_emitted, 3u);
}

TEST_F(KwEngineTest, SlotAddressesMatchCrcUnit) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(99);
  r.redundancy = 2;
  r.data = {5, 5, 5, 5};
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  for (unsigned n = 0; n < 2; ++n) {
    const std::uint64_t slot = slot_index(n, r.key, geometry_.num_slots);
    EXPECT_EQ(ops[n].remote_va, 0x1000 + slot * 8);
    EXPECT_EQ(ops[n].rkey, 0x42u);
  }
}

TEST_F(KwEngineTest, PayloadIsChecksumThenValue) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(5);
  r.redundancy = 1;
  r.data = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  ASSERT_EQ(ops[0].payload.size(), 8u);
  EXPECT_EQ(common::load_u32(ops[0].payload.data()), key_checksum(r.key));
  EXPECT_EQ(ops[0].payload[4], 0xDE);
  EXPECT_EQ(ops[0].payload[7], 0xEF);
}

TEST_F(KwEngineTest, ShortValueZeroPadded) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(5);
  r.redundancy = 1;
  r.data = {0x11};
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  ASSERT_EQ(ops[0].payload.size(), 8u);
  EXPECT_EQ(ops[0].payload[4], 0x11);
  EXPECT_EQ(ops[0].payload[5], 0);
}

TEST_F(KwEngineTest, LongValueTruncatedAndCounted) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(5);
  r.redundancy = 1;
  r.data = Bytes(10, 0xAB);
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  EXPECT_EQ(ops[0].payload.size(), 8u);
  EXPECT_EQ(engine.stats().truncated_values, 1u);
}

TEST_F(KwEngineTest, ImmediateOnlyOnFirstReplica) {
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(5);
  r.redundancy = 3;
  r.data = {1, 2, 3, 4};
  std::vector<RdmaOp> ops;
  engine.translate(r, true, ops);
  EXPECT_TRUE(ops[0].immediate.has_value());
  EXPECT_FALSE(ops[1].immediate.has_value());
  EXPECT_FALSE(ops[2].immediate.has_value());
}

TEST_F(KwEngineTest, TwentyByteValues) {
  geometry_.value_bytes = 20;  // 5-hop path tracing
  KeyWriteEngine engine(geometry_);
  proto::KeyWriteReport r;
  r.key = key_of(5);
  r.redundancy = 2;
  r.data = Bytes(20, 0x31);
  std::vector<RdmaOp> ops;
  engine.translate(r, false, ops);
  EXPECT_EQ(ops[0].payload.size(), 24u);  // 4B csum + 20B
}

// ----------------------------------------------------- Key-Increment engine

TEST(KiEngine, EmitsNFetchAdds) {
  KeyIncrementGeometry g;
  g.base_va = 0x8000;
  g.rkey = 9;
  g.num_slots = 4096;
  KeyIncrementEngine engine(g);

  proto::KeyIncrementReport r;
  r.key = key_of(3);
  r.redundancy = 4;
  r.counter = 17;
  std::vector<RdmaOp> ops;
  engine.translate(r, ops);
  ASSERT_EQ(ops.size(), 4u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.kind, RdmaOp::Kind::kFetchAdd);
    EXPECT_EQ(op.add_value, 17u);
    EXPECT_EQ((op.remote_va - 0x8000) % 8, 0u);  // aligned counters
    EXPECT_LT(op.remote_va, 0x8000 + 4096 * 8);
  }
}

// -------------------------------------------------------- Postcard cache

class PostcardCacheTest : public ::testing::Test {
 protected:
  PostcardCacheTest() {
    geometry_.base_va = 0x10000;
    geometry_.rkey = 0x77;
    geometry_.num_chunks = 1 << 14;
    geometry_.hops = 5;
  }

  proto::PostcardReport card(std::uint32_t flow, std::uint8_t hop,
                             std::uint32_t value, std::uint8_t path_len = 5) {
    proto::PostcardReport r;
    r.key = key_of(flow);
    r.hop = hop;
    r.path_len = path_len;
    r.redundancy = 1;
    r.value = value;
    return r;
  }

  PostcardingGeometry geometry_;
};

TEST_F(PostcardCacheTest, PaddedChunkGeometry) {
  EXPECT_EQ(geometry_.padded_hops(), 8u);   // 5 -> 8
  EXPECT_EQ(geometry_.chunk_bytes(), 32u);  // 20B padded to 32B, per §5.2
}

TEST_F(PostcardCacheTest, EmitsAfterFullPath) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    cache.ingest(card(1, hop, 100 + hop), ops);
    if (hop < 4) EXPECT_TRUE(ops.empty()) << "premature emit at hop " << hop;
  }
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].payload.size(), 32u);
  EXPECT_EQ(cache.stats().full_emissions, 1u);
  EXPECT_EQ(cache.stats().early_emissions, 0u);
}

TEST_F(PostcardCacheTest, ChunkAddressFromHash) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  const TelemetryKey key = key_of(1);
  for (std::uint8_t hop = 0; hop < 5; ++hop) cache.ingest(card(1, hop, 7), ops);
  ASSERT_EQ(ops.size(), 1u);
  const std::uint64_t chunk = chunk_index(0, key, geometry_.num_chunks);
  EXPECT_EQ(ops[0].remote_va, 0x10000 + chunk * 32);
}

TEST_F(PostcardCacheTest, EncodedSlotsAreXorOfChecksumAndValueCode) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  const TelemetryKey key = key_of(3);
  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    cache.ingest(card(3, hop, 200 + hop), ops);
  }
  ASSERT_EQ(ops.size(), 1u);
  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    const std::uint32_t enc =
        common::load_u32(ops[0].payload.data() + hop * 4);
    EXPECT_EQ(enc, hop_checksum(key, hop) ^ value_code(200 + hop));
  }
}

TEST_F(PostcardCacheTest, ShortPathFillsBlanks) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  const TelemetryKey key = key_of(4);
  for (std::uint8_t hop = 0; hop < 3; ++hop) {
    cache.ingest(card(4, hop, 50 + hop, /*path_len=*/3), ops);
  }
  ASSERT_EQ(ops.size(), 1u);
  // Hops 3 and 4 must carry the encoded blank.
  for (std::uint8_t hop = 3; hop < 5; ++hop) {
    const std::uint32_t enc =
        common::load_u32(ops[0].payload.data() + hop * 4);
    EXPECT_EQ(enc, hop_checksum(key, hop) ^ value_code(kBlankValue));
  }
}

TEST_F(PostcardCacheTest, CollisionEvictsEarly) {
  PostcardCache cache(geometry_, 1);  // single row: everything collides
  std::vector<RdmaOp> ops;
  cache.ingest(card(1, 0, 10), ops);
  EXPECT_TRUE(ops.empty());
  cache.ingest(card(2, 0, 20), ops);  // different flow: evicts flow 1
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(cache.stats().early_emissions, 1u);
}

TEST_F(PostcardCacheTest, RedundancyEmitsNWrites) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    auto c = card(9, hop, 1);
    c.redundancy = 2;
    cache.ingest(c, ops);
  }
  EXPECT_EQ(ops.size(), 2u);
  EXPECT_NE(ops[0].remote_va, ops[1].remote_va);
}

TEST_F(PostcardCacheTest, OutOfRangeHopDropped) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  cache.ingest(card(1, 7, 10), ops);  // hop >= B
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(cache.stats().postcards_in, 1u);
}

TEST_F(PostcardCacheTest, FlushDrainsResidents) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  cache.ingest(card(1, 0, 10), ops);
  cache.ingest(card(1, 1, 11), ops);
  EXPECT_TRUE(ops.empty());
  cache.flush_all(ops);
  EXPECT_EQ(ops.size(), 1u);
  EXPECT_EQ(cache.stats().final_flushes, 1u);
}

TEST_F(PostcardCacheTest, DuplicateHopDoesNotDoubleCount) {
  PostcardCache cache(geometry_, 1024);
  std::vector<RdmaOp> ops;
  cache.ingest(card(1, 0, 10), ops);
  cache.ingest(card(1, 0, 12), ops);  // retransmitted postcard, new value
  cache.ingest(card(1, 1, 11), ops);
  EXPECT_TRUE(ops.empty());  // count must be 2, not 3
}

// ------------------------------------------------------------ Append engine

class AppendEngineTest : public ::testing::Test {
 protected:
  AppendEngineTest() {
    geometry_.base_va = 0x20000;
    geometry_.rkey = 0x88;
    geometry_.num_lists = 4;
    geometry_.entries_per_list = 64;
    geometry_.entry_bytes = 4;
  }

  proto::AppendReport entry(std::uint32_t list, std::uint32_t value) {
    proto::AppendReport r;
    r.list_id = list;
    r.entry_size = 4;
    Bytes e;
    common::put_u32(e, value);
    r.entries.push_back(std::move(e));
    return r;
  }

  AppendGeometry geometry_;
};

TEST_F(AppendEngineTest, BatchesBeforeEmitting) {
  AppendEngine engine(geometry_, 4);
  std::vector<RdmaOp> ops;
  for (std::uint32_t i = 0; i < 3; ++i) {
    engine.ingest(entry(0, i), false, ops);
    EXPECT_TRUE(ops.empty());
  }
  engine.ingest(entry(0, 3), false, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].payload.size(), 16u);  // 4 entries x 4B
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(common::load_u32(ops[0].payload.data() + i * 4), i);
  }
}

TEST_F(AppendEngineTest, HeadAdvancesByBatch) {
  AppendEngine engine(geometry_, 4);
  std::vector<RdmaOp> ops;
  for (std::uint32_t i = 0; i < 8; ++i) engine.ingest(entry(0, i), false, ops);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].remote_va, 0x20000u);
  EXPECT_EQ(ops[1].remote_va, 0x20000u + 16);
  EXPECT_EQ(engine.head(0), 8u);
}

TEST_F(AppendEngineTest, RingWrapsAtListEnd) {
  AppendEngine engine(geometry_, 4);
  std::vector<RdmaOp> ops;
  for (std::uint32_t i = 0; i < 64; ++i) engine.ingest(entry(0, i), false, ops);
  EXPECT_EQ(engine.head(0), 0u);  // wrapped exactly
  ops.clear();
  for (std::uint32_t i = 0; i < 4; ++i) engine.ingest(entry(0, i), false, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].remote_va, 0x20000u);  // back at the start
}

TEST_F(AppendEngineTest, ListsAreIndependent) {
  AppendEngine engine(geometry_, 2);
  std::vector<RdmaOp> ops;
  engine.ingest(entry(0, 1), false, ops);
  engine.ingest(entry(1, 2), false, ops);
  EXPECT_TRUE(ops.empty());  // each list has only 1 of 2 batched
  engine.ingest(entry(1, 3), false, ops);
  ASSERT_EQ(ops.size(), 1u);
  // List 1's region starts one list-length after list 0's.
  EXPECT_EQ(ops[0].remote_va, 0x20000u + 64 * 4);
}

TEST_F(AppendEngineTest, MultiEntryPacketsBatchCorrectly) {
  AppendEngine engine(geometry_, 4);
  proto::AppendReport r;
  r.list_id = 2;
  r.entry_size = 4;
  for (std::uint32_t i = 0; i < 8; ++i) {
    Bytes e;
    common::put_u32(e, i);
    r.entries.push_back(std::move(e));
  }
  std::vector<RdmaOp> ops;
  engine.ingest(r, false, ops);
  EXPECT_EQ(ops.size(), 2u);
  EXPECT_EQ(engine.stats().entries_in, 8u);
}

TEST_F(AppendEngineTest, BadListDropped) {
  AppendEngine engine(geometry_, 4);
  std::vector<RdmaOp> ops;
  engine.ingest(entry(99, 1), false, ops);
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(engine.stats().dropped_bad_list, 1u);
}

TEST_F(AppendEngineTest, WrongEntrySizeDropped) {
  AppendEngine engine(geometry_, 4);
  proto::AppendReport r;
  r.list_id = 0;
  r.entry_size = 8;  // store expects 4
  r.entries.push_back(Bytes(8, 0));
  std::vector<RdmaOp> ops;
  engine.ingest(r, false, ops);
  EXPECT_EQ(engine.stats().dropped_bad_list, 1u);
}

TEST_F(AppendEngineTest, FlushEmitsPartialBatch) {
  AppendEngine engine(geometry_, 16);
  std::vector<RdmaOp> ops;
  for (std::uint32_t i = 0; i < 5; ++i) engine.ingest(entry(0, i), false, ops);
  EXPECT_TRUE(ops.empty());
  engine.flush_all(ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].payload.size(), 20u);
}

TEST_F(AppendEngineTest, NoBatchingEmitsPerEntry) {
  AppendEngine engine(geometry_, 1);
  std::vector<RdmaOp> ops;
  engine.ingest(entry(0, 42), false, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].payload.size(), 4u);
}

// ------------------------------------------------------------ Rate limiter

TEST(RateLimiter, AdmitsWithinBudget) {
  RateLimiterParams params;
  params.ops_per_second = 1e9;
  params.burst = 10;
  RateLimiter limiter(params);
  EXPECT_TRUE(limiter.admit(0, 10));
  EXPECT_FALSE(limiter.admit(0, 1));  // bucket drained, no time passed
}

TEST(RateLimiter, RefillsOverTime) {
  RateLimiterParams params;
  params.ops_per_second = 1e9;  // 1 token/ns
  params.burst = 10;
  RateLimiter limiter(params);
  EXPECT_TRUE(limiter.admit(0, 10));
  EXPECT_FALSE(limiter.admit(0, 5));
  EXPECT_TRUE(limiter.admit(5, 5));  // 5ns later: 5 tokens back
}

TEST(RateLimiter, NackCarriesDropInfo) {
  RateLimiterParams params;
  params.nack_on_drop = true;
  RateLimiter limiter(params);
  auto nack = limiter.make_nack(proto::PrimitiveOp::kAppend, 16);
  ASSERT_TRUE(nack);
  EXPECT_EQ(nack->dropped_op, proto::PrimitiveOp::kAppend);
  EXPECT_EQ(nack->dropped_count, 16u);
}

TEST(RateLimiter, NackDisabled) {
  RateLimiterParams params;
  params.nack_on_drop = false;
  RateLimiter limiter(params);
  EXPECT_FALSE(limiter.make_nack(proto::PrimitiveOp::kKeyWrite, 1));
}

// ------------------------------------------- Rate limiter: tenant buckets

TEST(RateLimiterTenants, ConfiguredTenantsAreIsolated) {
  RateLimiterParams shared;
  shared.ops_per_second = 1e9;
  shared.burst = 100;
  RateLimiter limiter(shared);
  RateLimiterParams small;
  small.ops_per_second = 1e9;
  small.burst = 4;
  limiter.set_tenant_params(7, small);
  limiter.set_tenant_params(8, small);

  // Tenant 7 drains its own bucket...
  EXPECT_TRUE(limiter.admit(7, 0, 4));
  EXPECT_FALSE(limiter.admit(7, 0, 1));
  // ...without touching tenant 8's or the shared default bucket.
  EXPECT_TRUE(limiter.admit(8, 0, 4));
  EXPECT_TRUE(limiter.admit(kDefaultTenant, 0, 100));
  EXPECT_EQ(limiter.dropped(7), 1u);
  EXPECT_EQ(limiter.dropped(8), 0u);
  EXPECT_EQ(limiter.dropped(), 1u);
}

TEST(RateLimiterTenants, UnconfiguredTenantsShareDefaultBucket) {
  RateLimiterParams shared;
  shared.ops_per_second = 1e9;
  shared.burst = 10;
  RateLimiter limiter(shared);
  EXPECT_FALSE(limiter.has_tenant_bucket(42));

  // Two unconfigured tenants compete for the same shared tokens.
  EXPECT_TRUE(limiter.admit(42, 0, 6));
  EXPECT_FALSE(limiter.admit(43, 0, 6));
  // Per-tenant counters for unconfigured tenants read the shared bucket.
  EXPECT_EQ(limiter.admitted(42), 1u);
  EXPECT_EQ(limiter.dropped(43), 1u);
}

TEST(RateLimiterTenants, TenantBucketRefillsAtItsOwnRate) {
  RateLimiterParams shared;
  shared.ops_per_second = 1.0;  // shared bucket refills glacially
  shared.burst = 1;
  RateLimiter limiter(shared);
  RateLimiterParams fast;
  fast.ops_per_second = 1e9;  // 1 token/ns
  fast.burst = 8;
  limiter.set_tenant_params(3, fast);

  EXPECT_TRUE(limiter.admit(3, 0, 8));
  EXPECT_FALSE(limiter.admit(3, 0, 4));
  EXPECT_TRUE(limiter.admit(3, 4, 4));  // 4ns later: 4 tokens back
}

TEST(RateLimiterTenants, RetryAfterTracksRefillHorizon) {
  RateLimiterParams params;
  params.ops_per_second = 1e9;  // 1 token/ns
  params.burst = 10;
  RateLimiter limiter(params);
  limiter.set_tenant_params(5, params);

  EXPECT_EQ(limiter.retry_after_ns(5, 0, 10), 0u);  // full bucket
  EXPECT_TRUE(limiter.admit(5, 0, 10));
  EXPECT_EQ(limiter.retry_after_ns(5, 0, 10), 10u);  // full drain: 10ns
  EXPECT_EQ(limiter.retry_after_ns(5, 0, 3), 3u);
  // Requests beyond the bucket depth saturate to the full-bucket
  // horizon instead of promising the impossible.
  EXPECT_EQ(limiter.retry_after_ns(5, 0, 64), 10u);
}

TEST(RateLimiterTenants, TenantNackCarriesRetryHint) {
  RateLimiterParams params;
  params.nack_on_drop = true;
  RateLimiter limiter(params);
  limiter.set_tenant_params(6, params);
  auto nack =
      limiter.make_nack(6, proto::PrimitiveOp::kKeyWrite, 3, 2'500'000);
  ASSERT_TRUE(nack);
  EXPECT_EQ(nack->dropped_count, 3u);
  EXPECT_EQ(nack->retry_after_us, 2500u);  // ns clamped into us hint
}

}  // namespace
}  // namespace dta::translator

#include "rdma/roce.h"

#include <gtest/gtest.h>

namespace dta::rdma {
namespace {

using common::ByteSpan;
using common::Bytes;
using common::Cursor;

TEST(Bth, EncodeDecodeRoundTrip) {
  Bth h;
  h.opcode = Opcode::kWriteOnly;
  h.dest_qpn = 0x123456;
  h.psn = 0xABCDEF;
  h.ack_request = true;

  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), Bth::kSize);

  Cursor cur((ByteSpan(buf)));
  auto d = Bth::decode(cur);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->opcode, h.opcode);
  EXPECT_EQ(d->dest_qpn, h.dest_qpn);
  EXPECT_EQ(d->psn, h.psn);
  EXPECT_TRUE(d->ack_request);
}

TEST(Bth, PsnMasked24Bits) {
  Bth h;
  h.psn = 0x12ABCDEF;  // above 24 bits
  Bytes buf;
  h.encode(buf);
  Cursor cur((ByteSpan(buf)));
  EXPECT_EQ(Bth::decode(cur)->psn, 0xABCDEFu);
}

TEST(Reth, EncodeDecodeRoundTrip) {
  Reth h;
  h.virtual_addr = 0x100000000abcull;
  h.rkey = 0x1001;
  h.dma_length = 24;
  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), Reth::kSize);
  Cursor cur((ByteSpan(buf)));
  auto d = Reth::decode(cur);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->virtual_addr, h.virtual_addr);
  EXPECT_EQ(d->rkey, h.rkey);
  EXPECT_EQ(d->dma_length, h.dma_length);
}

TEST(AtomicEth, EncodeDecodeRoundTrip) {
  AtomicEth h;
  h.virtual_addr = 0xFEED0000ull;
  h.rkey = 7;
  h.swap_add = 42;
  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), AtomicEth::kSize);
  Cursor cur((ByteSpan(buf)));
  auto d = AtomicEth::decode(cur);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->swap_add, 42u);
}

TEST(Aeth, EncodeDecodeRoundTrip) {
  Aeth h;
  h.syndrome = AethSyndrome::kPsnSeqNak;
  h.msn = 0x010203;
  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), Aeth::kSize);
  Cursor cur((ByteSpan(buf)));
  auto d = Aeth::decode(cur);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->syndrome, AethSyndrome::kPsnSeqNak);
  EXPECT_EQ(d->msn, 0x010203u);
}

TEST(OpcodeProperties, HeaderRequirements) {
  EXPECT_TRUE(opcode_has_reth(Opcode::kWriteOnly));
  EXPECT_TRUE(opcode_has_reth(Opcode::kWriteOnlyImm));
  EXPECT_FALSE(opcode_has_reth(Opcode::kFetchAdd));
  EXPECT_TRUE(opcode_has_atomic_eth(Opcode::kFetchAdd));
  EXPECT_TRUE(opcode_has_imm(Opcode::kWriteOnlyImm));
  EXPECT_FALSE(opcode_has_imm(Opcode::kWriteOnly));
}

TEST(RoceDatagram, WriteOnlyRoundTrip) {
  Bth bth;
  bth.opcode = Opcode::kWriteOnly;
  bth.dest_qpn = 0x11;
  bth.psn = 5;
  Reth reth;
  reth.virtual_addr = 0x1000;
  reth.rkey = 0x42;
  const Bytes payload = {9, 8, 7, 6};
  reth.dma_length = static_cast<std::uint32_t>(payload.size());

  const Bytes dgram = build_roce_datagram(bth, &reth, nullptr, nullptr,
                                          nullptr, ByteSpan(payload));
  auto view = parse_roce_datagram(ByteSpan(dgram));
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->icrc_ok);
  EXPECT_EQ(view->bth.psn, 5u);
  ASSERT_TRUE(view->reth);
  EXPECT_EQ(view->reth->virtual_addr, 0x1000u);
  EXPECT_EQ(Bytes(view->payload.begin(), view->payload.end()), payload);
}

TEST(RoceDatagram, FetchAddRoundTrip) {
  Bth bth;
  bth.opcode = Opcode::kFetchAdd;
  AtomicEth eth;
  eth.virtual_addr = 0x2000;
  eth.rkey = 1;
  eth.swap_add = 99;
  const Bytes dgram =
      build_roce_datagram(bth, nullptr, &eth, nullptr, nullptr, {});
  auto view = parse_roce_datagram(ByteSpan(dgram));
  ASSERT_TRUE(view);
  ASSERT_TRUE(view->atomic);
  EXPECT_EQ(view->atomic->swap_add, 99u);
  EXPECT_TRUE(view->payload.empty());
}

TEST(RoceDatagram, ImmediateRoundTrip) {
  Bth bth;
  bth.opcode = Opcode::kWriteOnlyImm;
  Reth reth;
  reth.dma_length = 0;
  const std::uint32_t imm = 0xFACE;
  const Bytes dgram =
      build_roce_datagram(bth, &reth, nullptr, &imm, nullptr, {});
  auto view = parse_roce_datagram(ByteSpan(dgram));
  ASSERT_TRUE(view);
  ASSERT_TRUE(view->immediate);
  EXPECT_EQ(*view->immediate, 0xFACEu);
}

TEST(RoceDatagram, CorruptionBreaksIcrc) {
  Bth bth;
  bth.opcode = Opcode::kSendOnly;
  const Bytes payload = {1, 2, 3};
  Bytes dgram =
      build_roce_datagram(bth, nullptr, nullptr, nullptr, nullptr,
                          ByteSpan(payload));
  dgram[Bth::kSize] ^= 0xFF;  // flip a payload byte
  auto view = parse_roce_datagram(ByteSpan(dgram));
  ASSERT_TRUE(view);
  EXPECT_FALSE(view->icrc_ok);
}

TEST(RoceDatagram, TooShortRejected) {
  Bytes junk(8, 0);
  EXPECT_FALSE(parse_roce_datagram(ByteSpan(junk)));
}

TEST(RoceDatagram, AckCarriesAeth) {
  Bth bth;
  bth.opcode = Opcode::kAcknowledge;
  Aeth aeth;
  aeth.syndrome = AethSyndrome::kAck;
  aeth.msn = 77;
  const Bytes dgram =
      build_roce_datagram(bth, nullptr, nullptr, nullptr, &aeth, {});
  auto view = parse_roce_datagram(ByteSpan(dgram));
  ASSERT_TRUE(view);
  ASSERT_TRUE(view->aeth);
  EXPECT_EQ(view->aeth->msn, 77u);
}

}  // namespace
}  // namespace dta::rdma

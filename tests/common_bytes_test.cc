#include "common/bytes.h"

#include <gtest/gtest.h>

namespace dta::common {
namespace {

TEST(Bytes, PutReadRoundTripU16) {
  Bytes b;
  put_u16(b, 0xBEEF);
  ASSERT_EQ(b.size(), 2u);
  Cursor cur((ByteSpan(b)));
  EXPECT_EQ(cur.u16(), 0xBEEF);
  EXPECT_TRUE(cur.ok());
}

TEST(Bytes, PutReadRoundTripU32) {
  Bytes b;
  put_u32(b, 0xDEADBEEF);
  Cursor cur((ByteSpan(b)));
  EXPECT_EQ(cur.u32(), 0xDEADBEEFu);
}

TEST(Bytes, PutReadRoundTripU64) {
  Bytes b;
  put_u64(b, 0x0123456789ABCDEFull);
  Cursor cur((ByteSpan(b)));
  EXPECT_EQ(cur.u64(), 0x0123456789ABCDEFull);
}

TEST(Bytes, BigEndianLayout) {
  Bytes b;
  put_u32(b, 0x01020304);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

TEST(Bytes, CursorOverrunSetsNotOk) {
  Bytes b = {1, 2};
  Cursor cur((ByteSpan(b)));
  cur.u32();  // needs 4 bytes, only 2 available
  EXPECT_FALSE(cur.ok());
}

TEST(Bytes, CursorOverrunReturnsZero) {
  Bytes b = {0xFF};
  Cursor cur((ByteSpan(b)));
  EXPECT_EQ(cur.u16(), 0u);
}

TEST(Bytes, CursorStaysNotOkAfterOverrun) {
  Bytes b = {1};
  Cursor cur((ByteSpan(b)));
  cur.u32();
  EXPECT_FALSE(cur.ok());
  // Even a fitting read must not resurrect the cursor.
  EXPECT_EQ(cur.u8(), 0u);
  EXPECT_FALSE(cur.ok());
}

TEST(Bytes, CursorBytesSubspan) {
  Bytes b = {1, 2, 3, 4, 5};
  Cursor cur((ByteSpan(b)));
  cur.skip(1);
  ByteSpan s = cur.bytes(3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(cur.remaining(), 1u);
}

TEST(Bytes, InPlaceU32RoundTrip) {
  std::uint8_t buf[4];
  store_u32(buf, 0xCAFEBABE);
  EXPECT_EQ(load_u32(buf), 0xCAFEBABEu);
}

TEST(Bytes, InPlaceU64RoundTrip) {
  std::uint8_t buf[8];
  store_u64(buf, 0x1122334455667788ull);
  EXPECT_EQ(load_u64(buf), 0x1122334455667788ull);
}

TEST(Bytes, ToHex) {
  Bytes b = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(ByteSpan(b)), "00abff");
}

TEST(Bytes, PutBytesAppends) {
  Bytes a = {1, 2};
  Bytes b = {3, 4};
  put_bytes(a, ByteSpan(b));
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));
}

}  // namespace
}  // namespace dta::common

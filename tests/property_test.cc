// Property-based sweeps: the measured behaviour of the real data path
// must track the paper's closed-form analysis across the parameter
// grid. These are the strongest correctness checks in the suite — they
// tie the simulation (translator engines + RDMA + stores) to Appendix A.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>

#include "analysis/kw_bounds.h"
#include "collector/rdma_service.h"
#include "collector/runtime.h"
#include "common/crc.h"
#include "common/rng.h"
#include "dta/report_builders.h"
#include "translator/append_engine.h"
#include "translator/keyincrement_engine.h"
#include "translator/keywrite_engine.h"
#include "translator/postcard_cache.h"
#include "translator/rdma_crafter.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;
using translator::RdmaOp;

TelemetryKey key_of(std::uint64_t id) {
  // CRC is an affine (and injective) map over GF(2): sequential counter
  // keys would traverse slots collision-free, which is *better* than the
  // uniform-hashing assumption of Appendix A. Real telemetry keys (flow
  // 5-tuples) look random, so mix the id first to match the analysis.
  std::uint64_t z = id + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

// ------------------------------------------------------------------------
// Key-Write: measured query success rate vs the analytic estimate, over
// (N, alpha). Writes a probe population, then alpha*M newer keys, then
// queries the probes. Mirrors the §6.5.2 experiment behind Figure 12.
// ------------------------------------------------------------------------

class KwSuccessSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(KwSuccessSweep, MeasuredSuccessTracksAnalysis) {
  const auto [redundancy, alpha] = GetParam();
  constexpr std::uint64_t kSlots = 1 << 16;
  constexpr int kProbes = 2000;

  collector::RdmaService service;
  collector::KeyWriteSetup setup;
  setup.num_slots = kSlots;
  setup.value_bytes = 4;
  service.enable_keywrite(setup);
  rdma::ConnectRequest req;
  req.start_psn = 0;
  const auto accept = service.accept(req);

  translator::KeyWriteGeometry geo;
  geo.base_va = accept.regions[0].base_va;
  geo.rkey = accept.regions[0].rkey;
  geo.value_bytes = 4;
  geo.num_slots = kSlots;
  translator::KeyWriteEngine engine(geo);
  translator::RdmaCrafter crafter({}, accept.responder_qpn, 0);

  auto write = [&](std::uint64_t id) {
    proto::KeyWriteReport r;
    r.key = key_of(id);
    r.redundancy = static_cast<std::uint8_t>(redundancy);
    common::put_u32(r.data, static_cast<std::uint32_t>(id));
    std::vector<RdmaOp> ops;
    engine.translate(r, false, ops);
    for (auto& op : ops) {
      service.nic().ingest(crafter.craft(op));
    }
  };

  // Probe population, then alpha*M newer distinct keys.
  for (std::uint64_t i = 0; i < kProbes; ++i) write(i);
  const auto newer = static_cast<std::uint64_t>(alpha * kSlots);
  for (std::uint64_t i = 0; i < newer; ++i) write(1000000 + i);

  int success = 0, wrong = 0;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    const auto result = service.keywrite()->query(
        key_of(i), static_cast<std::uint8_t>(redundancy));
    if (result.status == collector::QueryStatus::kHit) {
      if (common::load_u32(result.value.data()) == i) {
        ++success;
      } else {
        ++wrong;
      }
    }
  }

  const double measured = static_cast<double>(success) / kProbes;
  analysis::KwParams p;
  p.redundancy = redundancy;
  p.checksum_bits = 32;
  p.load_alpha = alpha;
  const double predicted = analysis::kw_success_rate_estimate(p);

  EXPECT_NEAR(measured, predicted, 0.05)
      << "N=" << redundancy << " alpha=" << alpha;
  // Wrong outputs are essentially impossible with 32-bit checksums.
  EXPECT_EQ(wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KwSuccessSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0.05, 0.1, 0.2, 0.5, 1.0)),
    [](const auto& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_alpha" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ------------------------------------------------------------------------
// Postcarding: write/decode round trip across path lengths and
// redundancy. Every written path must decode exactly; no cross-flow
// contamination.
// ------------------------------------------------------------------------

class PostcardingSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(PostcardingSweep, PathsRoundTripExactly) {
  const auto [path_len, redundancy] = GetParam();

  collector::RdmaService service;
  collector::PostcardingSetup setup;
  setup.num_chunks = 1 << 14;
  setup.hops = 5;
  for (std::uint32_t v = 0; v < 2048; ++v) setup.value_space.push_back(v);
  service.enable_postcarding(setup);
  rdma::ConnectRequest req;
  const auto accept = service.accept(req);

  translator::PostcardingGeometry geo;
  geo.base_va = accept.regions[0].base_va;
  geo.rkey = accept.regions[0].rkey;
  geo.hops = 5;
  geo.num_chunks = setup.num_chunks;
  translator::PostcardCache cache(geo, 8192);
  translator::RdmaCrafter crafter({}, accept.responder_qpn, 0);

  constexpr int kFlows = 300;
  for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
    std::vector<RdmaOp> ops;
    for (std::uint8_t hop = 0; hop < path_len; ++hop) {
      proto::PostcardReport r;
      r.key = key_of(flow);
      r.hop = hop;
      r.path_len = static_cast<std::uint8_t>(path_len);
      r.redundancy = static_cast<std::uint8_t>(redundancy);
      r.value = (flow * 7 + hop) % 2048;
      cache.ingest(r, ops);
    }
    for (auto& op : ops) service.nic().ingest(crafter.craft(op));
  }

  int exact = 0;
  for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
    const auto result = service.postcarding()->query(
        key_of(flow), static_cast<std::uint8_t>(redundancy));
    if (!result.found) continue;
    ASSERT_EQ(result.hop_values.size(), path_len) << "flow " << flow;
    bool ok = true;
    for (std::uint8_t hop = 0; hop < path_len; ++hop) {
      if (result.hop_values[hop] != (flow * 7 + hop) % 2048) ok = false;
    }
    if (ok) ++exact;
  }
  // Low load factor: nearly all flows must decode, and none incorrectly.
  EXPECT_GE(exact, kFlows - 4)
      << "path_len=" << path_len << " N=" << redundancy;
}

INSTANTIATE_TEST_SUITE_P(Grid, PostcardingSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u,
                                                              5u),
                                            ::testing::Values(1u, 2u, 3u)),
                         [](const auto& info) {
                           return "len" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_N" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ------------------------------------------------------------------------
// Append: ring-buffer integrity across (batch, list length) — every
// entry written must be read back in order across multiple wraps.
// ------------------------------------------------------------------------

class AppendWrapSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(AppendWrapSweep, OrderPreservedAcrossWraps) {
  const auto [batch, list_entries] = GetParam();

  collector::RdmaService service;
  collector::AppendSetup setup;
  setup.num_lists = 2;
  setup.entries_per_list = list_entries;
  setup.entry_bytes = 4;
  service.enable_append(setup);
  rdma::ConnectRequest req;
  const auto accept = service.accept(req);

  translator::AppendGeometry geo;
  geo.base_va = accept.regions[0].base_va;
  geo.rkey = accept.regions[0].rkey;
  geo.num_lists = 2;
  geo.entries_per_list = list_entries;
  geo.entry_bytes = 4;
  translator::AppendEngine engine(geo, batch);
  translator::RdmaCrafter crafter({}, accept.responder_qpn, 0);

  // Write 2.5 list-lengths of entries; consume while writing so the
  // tail keeps up (the paper's CPU polls faster than collection, §6.7.1).
  const std::uint64_t total = list_entries * 5 / 2;
  std::uint64_t produced = 0, consumed = 0;
  auto* store = service.append();

  for (std::uint64_t i = 0; i < total; ++i) {
    proto::AppendReport r;
    r.list_id = 1;
    r.entry_size = 4;
    Bytes e;
    common::put_u32(e, static_cast<std::uint32_t>(i));
    r.entries.push_back(std::move(e));
    std::vector<RdmaOp> ops;
    engine.ingest(r, false, ops);
    for (auto& op : ops) service.nic().ingest(crafter.craft(op));
    produced = (i / batch) * batch;  // entries committed to memory

    while (consumed + batch <= produced) {
      ASSERT_EQ(common::load_u32(store->poll(1).data()), consumed)
          << "batch=" << batch << " list=" << list_entries;
      ++consumed;
    }
  }
  EXPECT_GT(consumed, list_entries);  // we actually wrapped
}

INSTANTIATE_TEST_SUITE_P(Grid, AppendWrapSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u,
                                                              16u),
                                            ::testing::Values(64u, 256u,
                                                              1024u)),
                         [](const auto& info) {
                           return "b" + std::to_string(std::get<0>(info.param)) +
                                  "_L" + std::to_string(std::get<1>(info.param));
                         });

// ------------------------------------------------------------------------
// Key-Increment: CMS overestimate property under heavy collision load.
// ------------------------------------------------------------------------

class KiCmsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KiCmsSweep, EstimateAlwaysAtLeastTruth) {
  const unsigned redundancy = GetParam();
  constexpr std::uint64_t kSlots = 512;  // tiny: force collisions

  collector::RdmaService service;
  collector::KeyIncrementSetup setup;
  setup.num_slots = kSlots;
  service.enable_keyincrement(setup);
  rdma::ConnectRequest req;
  const auto accept = service.accept(req);

  translator::KeyIncrementGeometry geo;
  geo.base_va = accept.regions[0].base_va;
  geo.rkey = accept.regions[0].rkey;
  geo.num_slots = kSlots;
  translator::KeyIncrementEngine engine(geo);
  translator::RdmaCrafter crafter({}, accept.responder_qpn, 0);

  common::Rng rng(common::test_seed(redundancy));
  std::vector<std::uint64_t> truth(400, 0);
  for (int step = 0; step < 5000; ++step) {
    const auto id = rng.next_below(truth.size());
    const std::uint64_t delta = 1 + rng.next_below(9);
    truth[id] += delta;

    proto::KeyIncrementReport r;
    r.key = key_of(id);
    r.redundancy = static_cast<std::uint8_t>(redundancy);
    r.counter = delta;
    std::vector<RdmaOp> ops;
    engine.translate(r, ops);
    for (auto& op : ops) service.nic().ingest(crafter.craft(op));
  }

  double total_overestimate = 0;
  for (std::uint64_t id = 0; id < truth.size(); ++id) {
    const std::uint64_t est = service.keyincrement()->query(
        key_of(id), static_cast<std::uint8_t>(redundancy));
    ASSERT_GE(est, truth[id]) << "CMS underestimated key " << id;
    total_overestimate += static_cast<double>(est - truth[id]);
  }
  // More rows shrink the expected overestimate (CMS property) — with
  // N=4 the average error must be small relative to total mass.
  if (redundancy == 4) {
    const double avg_err = total_overestimate / truth.size();
    double mass = 0;
    for (auto t : truth) mass += static_cast<double>(t);
    EXPECT_LT(avg_err, mass * 2.0 / kSlots * 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, KiCmsSweep, ::testing::Values(1u, 2u, 4u));

// ------------------------------------------------------------------------
// Snapshot generations: across arbitrary interleavings of ingest
// batches, per-shard flushes and snapshot requests, the shard
// generation is monotonic (strictly increasing whenever new reports are
// committed), a cached snapshot's generation never exceeds its shard's,
// and the cache serves the identical snapshot iff nothing was submitted
// since it was taken.
// ------------------------------------------------------------------------

class GenerationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GenerationSweep, MonotonicGenerationsAndCacheNeverAhead) {
  const unsigned seed = GetParam();
  constexpr std::uint32_t kShards = 2;

  collector::CollectorRuntimeConfig config;
  config.num_shards = kShards;
  config.thread_mode = collector::ThreadMode::kInline;  // deterministic
  config.op_batch_size = 4;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::CollectorRuntime runtime(config);

  common::Rng rng(common::test_seed(seed));
  std::uint64_t next_id = 0;
  std::uint64_t last_generation[kShards] = {0, 0};
  std::uint64_t covered_submits[kShards] = {0, 0};
  std::shared_ptr<const collector::StoreSnapshot> last_snap[kShards];

  auto check_monotonic = [&] {
    for (std::uint32_t s = 0; s < kShards; ++s) {
      const std::uint64_t g = runtime.shard(s).generation();
      EXPECT_GE(g, last_generation[s]) << "generation went backwards";
      last_generation[s] = g;
      if (const auto cached = runtime.snapshot_cache().peek(s)) {
        EXPECT_LE(cached->generation(), g)
            << "cached snapshot ahead of its shard";
      }
    }
  };

  for (int step = 0; step < 400; ++step) {
    switch (rng.next_below(3)) {
      case 0: {  // a burst of ingest batches
        const auto burst = 1 + rng.next_below(8);
        for (std::uint64_t i = 0; i < burst; ++i) {
          proto::KeyWriteReport r;
          r.key = key_of(next_id);
          r.redundancy = 1;
          common::put_u32(r.data, static_cast<std::uint32_t>(next_id));
          ++next_id;
          runtime.submit(reports::wrap(std::move(r)));
        }
        break;
      }
      case 1: {  // per-shard flush barrier
        runtime.flush_shard(
            static_cast<std::uint32_t>(rng.next_below(kShards)));
        break;
      }
      case 2: {  // snapshot request through the cache
        const auto s = static_cast<std::uint32_t>(rng.next_below(kShards));
        const std::uint64_t submitted = runtime.pipeline().submitted(s);
        const auto snap = runtime.snapshot_shard(s);
        EXPECT_LE(snap->generation(), runtime.shard(s).generation());
        if (last_snap[s]) {
          if (submitted == covered_submits[s]) {
            // Nothing new: the cache must serve the very same copy.
            EXPECT_EQ(snap.get(), last_snap[s].get());
          } else {
            // New reports (redundancy-1 Key-Write: always >= 1 op) were
            // committed by the refresh barrier: strictly newer stamp.
            EXPECT_GT(snap->generation(), last_snap[s]->generation());
          }
        }
        last_snap[s] = snap;
        covered_submits[s] = submitted;
        break;
      }
    }
    check_monotonic();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerationSweep,
                         ::testing::Values(1u, 7u, 21u, 99u, 1234u, 77777u));

// ------------------------------------------------------------------------
// Incremental snapshot refresh: across randomized op batches over all
// four store types, the chunk-patched cached snapshot must stay byte-
// identical to a fresh full copy — including when held snapshots force
// the copy-on-write clone path. This is the correctness oracle for the
// dirty-chunk tracker + SnapshotCache::refresh patch path.
// ------------------------------------------------------------------------

class IncrementalSnapshotSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalSnapshotSweep, ByteIdenticalToFullCopy) {
  const unsigned seed = GetParam();

  collector::CollectorRuntimeConfig config;
  config.num_shards = 1;
  config.thread_mode = collector::ThreadMode::kInline;  // deterministic
  config.op_batch_size = 4;
  config.snapshot_chunk_bytes = 256;  // small chunks: many patch ranges
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 4;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.append = ap;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 10;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 256; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  collector::CollectorRuntime runtime(config);

  const auto identical = [](const rdma::MemoryRegion* a,
                            const rdma::MemoryRegion* b, const char* what) {
    ASSERT_EQ(a == nullptr, b == nullptr) << what;
    if (!a) return;
    ASSERT_EQ(a->length(), b->length()) << what;
    EXPECT_EQ(std::memcmp(a->data(), b->data(), a->length()), 0)
        << what << " diverged from the full-copy reference";
  };

  common::Rng rng(common::test_seed(seed));
  std::uint64_t next_id = 0;
  bool ever_pinned = false;
  std::vector<std::shared_ptr<const collector::StoreSnapshot>> pinned;

  for (int step = 0; step < 250; ++step) {
    switch (rng.next_below(5)) {
      case 0: {  // Key-Write burst
        const auto burst = 1 + rng.next_below(6);
        for (std::uint64_t i = 0; i < burst; ++i) {
          proto::KeyWriteReport r;
          r.key = key_of(next_id++);
          r.redundancy = static_cast<std::uint8_t>(1 + rng.next_below(3));
          common::put_u32(r.data, static_cast<std::uint32_t>(next_id));
          runtime.submit(reports::wrap(std::move(r)));
        }
        break;
      }
      case 1: {  // Key-Increment (FETCH_ADD extents)
        proto::KeyIncrementReport r;
        r.key = key_of(rng.next_below(64));
        r.redundancy = 2;
        r.counter = 1 + rng.next_below(100);
        runtime.submit(reports::wrap(std::move(r)));
        break;
      }
      case 2: {  // Postcarding (chunk writes via the postcard cache)
        const std::uint64_t flow = rng.next_below(64);
        for (std::uint8_t hop = 0; hop < 5; ++hop) {
          proto::PostcardReport r;
          r.key = key_of(1000 + flow);
          r.hop = hop;
          r.path_len = 5;
          r.redundancy = 1;
          r.value = static_cast<std::uint32_t>(rng.next_below(256));
          runtime.submit(reports::wrap(r));
        }
        break;
      }
      case 3: {  // Append entries (ring writes, wrap included)
        proto::AppendReport r;
        r.list_id = static_cast<std::uint32_t>(rng.next_below(4));
        r.entry_size = 4;
        const auto entries = 1 + rng.next_below(8);
        for (std::uint64_t i = 0; i < entries; ++i) {
          Bytes entry;
          common::put_u32(entry, static_cast<std::uint32_t>(next_id++));
          r.entries.push_back(std::move(entry));
        }
        runtime.submit(reports::wrap(std::move(r)));
        break;
      }
      case 4: {  // flush barrier (drains postcard rows + append batches)
        runtime.flush();
        break;
      }
    }

    if (rng.next_below(4) == 0) {
      const auto cached = runtime.snapshot_shard(0);
      const auto reference = runtime.snapshot_shard_fresh(0);
      EXPECT_EQ(cached->generation(), reference->generation());
      identical(cached->keywrite_mem(), reference->keywrite_mem(),
                "keywrite");
      identical(cached->postcarding_mem(), reference->postcarding_mem(),
                "postcarding");
      identical(cached->append_mem(), reference->append_mem(), "append");
      identical(cached->keyincrement_mem(), reference->keyincrement_mem(),
                "keyincrement");
      // Hold some snapshots across future refreshes: a pinned reader
      // must force the copy-on-write clone path, and the clone must be
      // just as byte-faithful.
      if (rng.next_below(3) == 0) {
        pinned.push_back(cached);
        ever_pinned = true;
      } else if (!pinned.empty() && rng.next_below(3) == 0) {
        pinned.erase(pinned.begin());
      }
    }
  }

  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_GE(stats.incremental_refreshes, 1u)
      << "sweep never exercised the patch path";
  if (ever_pinned) {
    EXPECT_GE(stats.cow_clones, 1u)
        << "pinned snapshots never forced a copy-on-write clone";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSnapshotSweep,
                         ::testing::Values(3u, 17u, 4242u, 90210u));

// ------------------------------------------------------------------------
// Hot-path equivalence: the raw-speed paths (direct verb execution,
// batched submit, interleaved batch CRC) are pure optimizations — every
// one must be observationally identical to the slow path it bypasses.
// ------------------------------------------------------------------------

// One deterministic mixed-primitive report stream shared by the
// equivalence sweeps below.
std::vector<proto::ParsedDta> mixed_report_stream(unsigned seed, int count) {
  common::Rng rng(common::test_seed(seed));
  std::vector<proto::ParsedDta> out;
  std::uint64_t next_id = 0;
  for (int i = 0; i < count; ++i) {
    switch (rng.next_below(4)) {
      case 0: {
        proto::KeyWriteReport r;
        r.key = key_of(next_id++);
        r.redundancy = static_cast<std::uint8_t>(1 + rng.next_below(3));
        common::put_u32(r.data, static_cast<std::uint32_t>(next_id));
        out.push_back(reports::wrap(std::move(r), rng.next_below(8) == 0));
        break;
      }
      case 1: {
        proto::KeyIncrementReport r;
        r.key = key_of(rng.next_below(64));
        r.redundancy = 2;
        r.counter = 1 + rng.next_below(100);
        out.push_back(reports::wrap(std::move(r)));
        break;
      }
      case 2: {
        proto::PostcardReport r;
        r.key = key_of(1000 + rng.next_below(64));
        r.hop = static_cast<std::uint8_t>(rng.next_below(5));
        r.path_len = 5;
        r.redundancy = 1;
        r.value = static_cast<std::uint32_t>(rng.next_below(256));
        out.push_back(reports::wrap(r));
        break;
      }
      case 3: {
        proto::AppendReport r;
        r.list_id = static_cast<std::uint32_t>(rng.next_below(4));
        r.entry_size = 4;
        Bytes entry;
        common::put_u32(entry, static_cast<std::uint32_t>(next_id++));
        r.entries.push_back(std::move(entry));
        out.push_back(reports::wrap(std::move(r)));
        break;
      }
    }
  }
  return out;
}

collector::CollectorRuntimeConfig equivalence_config() {
  collector::CollectorRuntimeConfig config;
  config.num_shards = 2;
  config.thread_mode = collector::ThreadMode::kInline;
  config.op_batch_size = 4;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 4;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.append = ap;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 10;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 256; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  return config;
}

void expect_identical_stores(collector::CollectorRuntime& a,
                             collector::CollectorRuntime& b,
                             std::uint32_t num_shards) {
  const auto identical = [](const rdma::MemoryRegion* x,
                            const rdma::MemoryRegion* y, const char* what,
                            std::uint32_t shard) {
    ASSERT_EQ(x == nullptr, y == nullptr) << what << " shard " << shard;
    if (!x) return;
    ASSERT_EQ(x->length(), y->length()) << what << " shard " << shard;
    EXPECT_EQ(std::memcmp(x->data(), y->data(), x->length()), 0)
        << what << " shard " << shard << " diverged";
  };
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const auto& sa = a.shard(s).service();
    const auto& sb = b.shard(s).service();
    identical(sa.keywrite_region(), sb.keywrite_region(), "keywrite", s);
    identical(sa.keyincrement_region(), sb.keyincrement_region(),
              "keyincrement", s);
    identical(sa.append_region(), sb.append_region(), "append", s);
    identical(sa.postcarding_region(), sb.postcarding_region(), "postcarding",
              s);
  }
}

class DirectExecutionSweep : public ::testing::TestWithParam<unsigned> {};

// Direct verb execution (no frame craft, no RoCE parse) must leave
// every store byte and every verb counter exactly where the wire path
// leaves them.
TEST_P(DirectExecutionSweep, StoreIdenticalToWirePath) {
  auto config = equivalence_config();
  config.direct_execution = false;
  collector::CollectorRuntime wire(config);
  config.direct_execution = true;
  collector::CollectorRuntime direct(config);

  const auto stream = mixed_report_stream(GetParam(), 600);
  for (const auto& p : stream) {
    wire.submit(p);
    direct.submit(p);
  }
  wire.flush();
  direct.flush();

  expect_identical_stores(wire, direct, config.num_shards);
  const auto ws = wire.stats();
  const auto ds = direct.stats();
  EXPECT_EQ(ws.reports_in, ds.reports_in);
  EXPECT_EQ(ws.verbs_executed, ds.verbs_executed);
  EXPECT_EQ(ws.verbs_failed, ds.verbs_failed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectExecutionSweep,
                         ::testing::Values(5u, 29u, 8080u));

class SubmitBatchSweep : public ::testing::TestWithParam<unsigned> {};

// submit_batch (one interleaved routing pass, SoA op blocks through
// the queue) must be observationally identical to submitting the same
// reports one at a time.
TEST_P(SubmitBatchSweep, StoreIdenticalToPerReportSubmit) {
  const auto config = equivalence_config();
  collector::CollectorRuntime per_report(config);
  collector::CollectorRuntime batched(config);

  common::Rng rng(common::test_seed(GetParam() ^ 0xB10C));
  const auto stream = mixed_report_stream(GetParam(), 600);
  for (const auto& p : stream) per_report.submit(p);
  // Random batch sizes, including size-1 and size-0 edge cases.
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(rng.next_below(40), stream.size() - at);
    batched.submit_batch(std::vector<proto::ParsedDta>(
        stream.begin() + at, stream.begin() + at + n));
    at += n;
  }
  per_report.flush();
  batched.flush();

  expect_identical_stores(per_report, batched, config.num_shards);
  EXPECT_EQ(per_report.stats().reports_in, batched.stats().reports_in);
  EXPECT_EQ(per_report.stats().verbs_executed,
            batched.stats().verbs_executed);
  EXPECT_EQ(per_report.translation_stats().keywrite_reports,
            batched.translation_stats().keywrite_reports);
  EXPECT_EQ(per_report.translation_stats().fetch_adds,
            batched.translation_stats().fetch_adds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmitBatchSweep,
                         ::testing::Values(11u, 53u, 31337u));

class CrcBatchEquivalenceSweep : public ::testing::TestWithParam<unsigned> {};

// The interleaved batch-hash APIs are bit-exact aliases of the scalar
// calls, for every catalogue engine, across random message lengths and
// alignments (including empty messages and lanes of unequal length).
TEST_P(CrcBatchEquivalenceSweep, BatchApisMatchScalarCalls) {
  common::Rng rng(common::test_seed(GetParam()));
  std::vector<std::uint8_t> pool(4096);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng.next_below(256));

  const common::Crc32* engines[] = {
      &common::checksum_crc(), &common::value_crc(), &common::shard_crc(),
      &common::slot_crc(0),    &common::slot_crc(7), &common::hop_crc(3),
  };

  for (int round = 0; round < 50; ++round) {
    const std::size_t count = rng.next_below(13);  // not a multiple of 4
    std::vector<ByteSpan> msgs(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t len = rng.next_below(65);
      const std::size_t off = rng.next_below(pool.size() - 64);
      msgs[i] = ByteSpan(pool.data() + off, len);
    }

    for (const common::Crc32* engine : engines) {
      std::vector<std::uint32_t> batch(count), scalar(count);
      engine->compute_batch(msgs.data(), count, batch.data());
      for (std::size_t i = 0; i < count; ++i) {
        scalar[i] = engine->compute(msgs[i]);
      }
      EXPECT_EQ(batch, scalar) << "poly " << std::hex
                               << engine->polynomial();
    }

    if (count > 0) {
      std::uint32_t multi[6], single[6];
      common::Crc32::compute_multi(engines, 6, msgs[0], multi);
      for (int e = 0; e < 6; ++e) single[e] = engines[e]->compute(msgs[0]);
      for (int e = 0; e < 6; ++e) EXPECT_EQ(multi[e], single[e]) << e;
    }

    std::vector<std::uint32_t> shards(count), shards_ref(count);
    common::shard_of_batch(msgs.data(), count, 7, shards.data());
    for (std::size_t i = 0; i < count; ++i) {
      shards_ref[i] = common::shard_of(msgs[i], 7);
    }
    EXPECT_EQ(shards, shards_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrcBatchEquivalenceSweep,
                         ::testing::Values(2u, 19u, 7777u));

}  // namespace
}  // namespace dta

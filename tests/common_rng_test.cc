#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dta::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.next_below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  const double mean = 250.0;
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(mean);
  EXPECT_NEAR(sum / kDraws, mean, mean * 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ZipfInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_zipf(1000, 1.05), 1000u);
  }
}

TEST(Rng, ZipfSkewedTowardLowRanks) {
  Rng rng(19);
  constexpr int kDraws = 100000;
  int low = 0;  // rank in the first 1% of the space
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_zipf(10000, 1.05) < 100) ++low;
  }
  // Under uniform sampling low ≈ 1%; Zipf(1.05) concentrates far more.
  EXPECT_GT(low, kDraws / 10);
}

TEST(Rng, ZipfDegenerateSizes) {
  Rng rng(21);
  EXPECT_EQ(rng.next_zipf(0, 1.0), 0u);
  EXPECT_EQ(rng.next_zipf(1, 1.0), 0u);
}

}  // namespace
}  // namespace dta::common

// Table 2 integration tests: each monitoring system's records must map
// onto its designated primitive and survive the full write/query path.
#include <gtest/gtest.h>

#include "dtalib/fabric.h"
#include "telemetry/integrations.h"
#include "telemetry/records.h"

namespace dta::telemetry {
namespace {

using common::ByteSpan;
using common::Bytes;

FabricConfig integration_config() {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 12;  // fits PacketScope's 3x4B traversal record
  config.keywrite = kw;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 1024; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  collector::AppendSetup ap;
  ap.num_lists = 16;
  ap.entries_per_list = 1024;
  ap.entry_bytes = 22;  // dShark summaries, the largest entry here
  config.append = ap;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  config.translator.append_batch_size = 1;
  return config;
}

// ---------------------------------------------------------------- PINT

TEST(Pint, RedundancyDerivedFromPacketId) {
  // f(pktID) must be deterministic, in range, and geometric-ish.
  int histogram[5] = {};
  for (std::uint32_t id = 0; id < 10000; ++id) {
    const std::uint8_t n = PintReport::redundancy_of(id, 4);
    ASSERT_GE(n, 1);
    ASSERT_LE(n, 4);
    EXPECT_EQ(n, PintReport::redundancy_of(id, 4));
    histogram[n]++;
  }
  EXPECT_GT(histogram[1], histogram[2]);  // higher redundancy is rarer
  EXPECT_GT(histogram[2], histogram[3]);
}

TEST(Pint, OneByteReportsRoundTrip) {
  Fabric fabric(integration_config());
  PintReport report;
  report.flow = {0x0A000001, 0x0A000002, 1000, 80, 6};
  report.digest = 0x5C;
  report.packet_id = 12345;
  fabric.report(report.to_dta());

  const auto kb = report.flow.to_bytes();
  const auto key =
      proto::TelemetryKey::from(ByteSpan(kb.data(), kb.size()));
  const auto result = fabric.collector().service().keywrite()->query(
      key, PintReport::redundancy_of(12345, 4));
  ASSERT_EQ(result.status, collector::QueryStatus::kHit);
  EXPECT_EQ(result.value[0], 0x5C);
}

// -------------------------------------------------------------- Sonata

TEST(Sonata, QueryResultsKeyedByQueryId) {
  Fabric fabric(integration_config());
  SonataQueryResult result;
  result.query_id = 77;
  common::put_u32(result.result, 0xFEED);
  fabric.report(result.to_dta());

  Bytes kb;
  common::put_u32(kb, 77);
  const auto key = proto::TelemetryKey::from(ByteSpan(kb));
  const auto q = fabric.collector().service().keywrite()->query(key, 2);
  ASSERT_EQ(q.status, collector::QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(q.value.data()), 0xFEEDu);
}

TEST(Sonata, RawTuplesAppendToProcessorLists) {
  Fabric fabric(integration_config());
  for (std::uint32_t i = 0; i < 4; ++i) {
    SonataRawTuple tuple;
    tuple.query_id = 3;
    tuple.flow = {i, i + 1, 80, 443, 6};
    tuple.feature = i * 100;
    auto report = tuple.to_dta();
    report.entry_size = 22;  // shared region geometry
    report.entries[0].resize(22, 0);
    fabric.report(report);
  }
  auto* store = fabric.collector().service().append();
  const auto first = store->poll(3);
  EXPECT_EQ(common::load_u32(first.data() + 13), 0u);  // feature of tuple 0
}

// -------------------------------------------------------------- dShark

TEST(DShark, AllObserversAgreeOnGrouper) {
  DSharkSummary at_tor;
  at_tor.flow = {1, 2, 3, 4, 6};
  at_tor.ip_id = 999;
  at_tor.tcp_seq = 1234;
  at_tor.observer = 0;
  DSharkSummary at_spine = at_tor;
  at_spine.observer = 9;  // different capture point, same packet
  EXPECT_EQ(at_tor.grouper_of(16), at_spine.grouper_of(16));

  DSharkSummary other_packet = at_tor;
  other_packet.tcp_seq = 1235;
  // Not required to differ, but over many packets groupers must spread.
  int spread[4] = {};
  for (std::uint32_t seq = 0; seq < 1000; ++seq) {
    DSharkSummary s = at_tor;
    s.tcp_seq = seq;
    spread[s.grouper_of(4)]++;
  }
  for (int c : spread) EXPECT_GT(c, 150);
}

TEST(DShark, SummaryIs22Bytes) {
  DSharkSummary summary;
  summary.flow = {1, 2, 3, 4, 6};
  const auto report = summary.to_dta(8);
  EXPECT_EQ(report.entry_size, DSharkSummary::kEntryBytes);
  EXPECT_EQ(report.entries[0].size(), 22u);
}

// ---------------------------------------------------------- PacketScope

TEST(PacketScope, TraversalKeyIncludesSwitchId) {
  PacketScopeTraversal a;
  a.switch_id = 1;
  a.flow = {1, 2, 3, 4, 6};
  PacketScopeTraversal b = a;
  b.switch_id = 2;
  // Same flow at different switches must key differently.
  EXPECT_FALSE(a.to_dta().key == b.to_dta().key);
}

TEST(PacketScope, TraversalRoundTrip) {
  Fabric fabric(integration_config());
  PacketScopeTraversal t;
  t.switch_id = 42;
  t.flow = {0x0A000001, 0x0A000002, 1000, 80, 6};
  t.ingress_port = 3;
  t.egress_port = 17;
  t.queue_id = 5;
  fabric.report(t.to_dta());

  const auto result = fabric.collector().service().keywrite()->query(
      t.to_dta().key, 2);
  ASSERT_EQ(result.status, collector::QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 3u);
  EXPECT_EQ(common::load_u32(result.value.data() + 4), 17u);
  EXPECT_EQ(common::load_u32(result.value.data() + 8), 5u);
}

TEST(PacketScope, PipelineLossIs14Bytes) {
  PacketScopePipelineLoss loss;
  loss.switch_id = 7;
  loss.pipeline_stage = 4;
  loss.drop_table = 2;
  loss.flow_digest = 0xABCDEF;
  const auto report = loss.to_dta(5);
  EXPECT_EQ(report.entry_size, 14);
  EXPECT_EQ(report.list_id, 5u);
}

// -------------------------------------------------- Trajectory Sampling

TEST(Trajectory, LabelsAggregateLikePostcards) {
  Fabric fabric(integration_config());
  for (std::uint8_t hop = 0; hop < 4; ++hop) {
    TrajectoryLabel label;
    label.packet_hash = 0xBEEF;
    label.hop = hop;
    label.path_len = 4;
    label.label = 100 + hop;
    fabric.report(label.to_dta());
  }
  Bytes kb;
  common::put_u32(kb, 0xBEEF);
  const auto key = proto::TelemetryKey::from(ByteSpan(kb));
  const auto result =
      fabric.collector().service().postcarding()->query(key, 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values,
            (std::vector<std::uint32_t>{100, 101, 102, 103}));
}

}  // namespace
}  // namespace dta::telemetry

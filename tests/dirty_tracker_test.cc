// DirtyTracker unit tests: chunk marking, coalesced range readout,
// saturation fallbacks, the slot→byte-range helpers the four store
// types expose, and the shard-level integration (delivered op batches
// mark exactly the slots the engines wrote).
#include <gtest/gtest.h>

#include <set>

#include "collector/dirty_tracker.h"
#include "collector/runtime.h"
#include "dta/report_builders.h"
#include "rdma/memory_region.h"

namespace dta::collector {
namespace {

using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(common::ByteSpan(b));
}

TEST(DirtyTracker, MarksAndCoalescesChunks) {
  rdma::ProtectionDomain pd;
  rdma::MemoryRegion* region = pd.register_region(1 << 16, rdma::kRemoteWrite);
  DirtyTracker tracker(256);
  tracker.track(region);
  EXPECT_EQ(tracker.chunk_bytes(), 256u);
  EXPECT_EQ(tracker.tracked_bytes(), static_cast<std::uint64_t>(1 << 16));
  EXPECT_EQ(tracker.dirty_bytes(), 0u);
  EXPECT_TRUE(tracker.dirty_ranges(region).empty());

  // One byte dirties exactly one chunk.
  tracker.mark(region->base_va() + 10, 1);
  EXPECT_EQ(tracker.dirty_bytes(), 256u);
  auto ranges = tracker.dirty_ranges(region);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].second, 256u);

  // A write straddling a chunk boundary dirties both sides; adjacent
  // chunks coalesce into one range.
  tracker.mark(region->base_va() + 255, 2);
  ranges = tracker.dirty_ranges(region);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].second, 512u);

  // A distant write opens a second range.
  tracker.mark(region->base_va() + 4096, 8);
  ranges = tracker.dirty_ranges(region);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[1].first, 4096u);
  EXPECT_EQ(ranges[1].second, 256u);
  EXPECT_DOUBLE_EQ(tracker.dirty_ratio(), 3.0 * 256 / (1 << 16));

  tracker.clear();
  EXPECT_EQ(tracker.dirty_bytes(), 0u);
  EXPECT_TRUE(tracker.dirty_ranges(region).empty());
}

TEST(DirtyTracker, ChunkSizeRoundsUpToPowerOfTwo) {
  EXPECT_EQ(DirtyTracker(0).chunk_bytes(), 4096u);
  EXPECT_EQ(DirtyTracker(1).chunk_bytes(), 64u);
  EXPECT_EQ(DirtyTracker(65).chunk_bytes(), 128u);
  EXPECT_EQ(DirtyTracker(4096).chunk_bytes(), 4096u);
}

TEST(DirtyTracker, SaturationDegradesToFullCopy) {
  rdma::ProtectionDomain pd;
  rdma::MemoryRegion* region = pd.register_region(8192, rdma::kRemoteWrite);
  DirtyTracker tracker(1024);
  tracker.track(region);

  // A write outside every tracked region must never be lost: the
  // tracker saturates and reports the whole region dirty.
  tracker.mark(0xDEAD0000, 4);
  EXPECT_TRUE(tracker.saturated());
  EXPECT_EQ(tracker.stats().saturations, 1u);
  EXPECT_EQ(tracker.dirty_bytes(), 8192u);
  auto ranges = tracker.dirty_ranges(region);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], DirtyTracker::Range(0, 8192));

  // clear() resets saturation.
  tracker.clear();
  EXPECT_FALSE(tracker.saturated());
  EXPECT_EQ(tracker.dirty_bytes(), 0u);

  // Explicit mark_all behaves the same.
  tracker.mark_all();
  EXPECT_TRUE(tracker.saturated());
  EXPECT_DOUBLE_EQ(tracker.dirty_ratio(), 1.0);
}

TEST(DirtyTracker, UntrackedRegionReportsFullRange) {
  rdma::ProtectionDomain pd;
  rdma::MemoryRegion* tracked = pd.register_region(4096, rdma::kRemoteWrite);
  rdma::MemoryRegion* stranger = pd.register_region(2048, rdma::kRemoteWrite);
  DirtyTracker tracker(512);
  tracker.track(tracked);
  // Consumers asking about a region the tracker never saw must get the
  // safe answer (copy everything), not a clean bill.
  auto ranges = tracker.dirty_ranges(stranger);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], DirtyTracker::Range(0, 2048));
}

TEST(DirtyTracker, StoreSlotByteRangesMatchGeometry) {
  rdma::ProtectionDomain pd;
  rdma::MemoryRegion* kw_region =
      pd.register_region(16 * 8, rdma::kRemoteWrite);
  KeyWriteStore kw(kw_region, 16, 4);
  EXPECT_EQ(kw.slot_byte_range(0), std::make_pair(std::uint64_t{0},
                                                  std::uint64_t{8}));
  EXPECT_EQ(kw.slot_byte_range(3), std::make_pair(std::uint64_t{24},
                                                  std::uint64_t{8}));

  rdma::MemoryRegion* ki_region =
      pd.register_region(16 * 8, rdma::kRemoteAtomic);
  KeyIncrementStore ki(ki_region, 16);
  EXPECT_EQ(ki.slot_byte_range(2), std::make_pair(std::uint64_t{16},
                                                  std::uint64_t{8}));

  rdma::MemoryRegion* ap_region =
      pd.register_region(4 * 8 * 4, rdma::kRemoteWrite);
  AppendStore ap(ap_region, 4, 8, 4);
  EXPECT_EQ(ap.entry_byte_range(1, 2),
            std::make_pair(std::uint64_t{(8 + 2) * 4}, std::uint64_t{4}));

  rdma::MemoryRegion* pc_region =
      pd.register_region(8 * 8 * 4, rdma::kRemoteWrite);
  PostcardingStore pc(pc_region, 8, 5, {1, 2, 3});
  // 5 hops pad to 8 slots of 4 B.
  EXPECT_EQ(pc.chunk_bytes(), 32u);
  EXPECT_EQ(pc.chunk_byte_range(3), std::make_pair(std::uint64_t{96},
                                                   std::uint64_t{32}));
}

TEST(DirtyTracker, ShardMarksExactlyTheWrittenSlots) {
  // End to end: reports delivered through the runtime must mark dirty
  // ranges that cover every slot the Key-Write engine wrote — located
  // independently via the store's slot fetch — and nothing outside a
  // chunk radius of them.
  CollectorRuntimeConfig config;
  config.num_shards = 1;
  config.thread_mode = ThreadMode::kInline;
  config.op_batch_size = 1;  // deliver (and mark) immediately
  config.snapshot_chunk_bytes = 64;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;
  CollectorRuntime runtime(config);

  const auto* region = runtime.shard(0).service().keywrite_region();
  const auto& store = *runtime.shard(0).service().keywrite();
  const auto& tracker = runtime.shard(0).dirty_tracker();
  ASSERT_EQ(tracker.dirty_bytes(), 0u);

  constexpr std::uint8_t kRedundancy = 2;
  std::set<std::uint64_t> expected_chunks;
  for (std::uint64_t id = 0; id < 20; ++id) {
    proto::KeyWriteReport r;
    r.key = key_of(id);
    r.redundancy = kRedundancy;
    common::put_u32(r.data, static_cast<std::uint32_t>(id));
    for (std::uint8_t replica = 0; replica < kRedundancy; ++replica) {
      const auto span = store.fetch_slot(key_of(id), replica);
      const std::uint64_t offset =
          static_cast<std::uint64_t>(span.data() - region->data());
      expected_chunks.insert(offset / tracker.chunk_bytes());
    }
    runtime.submit(reports::wrap(std::move(r)));
  }
  runtime.flush();

  ASSERT_FALSE(tracker.saturated());
  const auto ranges = tracker.dirty_ranges(region);
  ASSERT_FALSE(ranges.empty());
  auto covered = [&](std::uint64_t chunk) {
    const std::uint64_t offset = chunk * tracker.chunk_bytes();
    for (const auto& range : ranges) {
      if (offset >= range.first && offset < range.first + range.second) {
        return true;
      }
    }
    return false;
  };
  for (const std::uint64_t chunk : expected_chunks) {
    EXPECT_TRUE(covered(chunk)) << "written chunk " << chunk << " not dirty";
  }
  // Precision: the dirty set is the written chunks, no more.
  EXPECT_EQ(tracker.dirty_bytes(),
            expected_chunks.size() * tracker.chunk_bytes());
  EXPECT_GE(tracker.stats().marks, 20u * kRedundancy);
}

}  // namespace
}  // namespace dta::collector

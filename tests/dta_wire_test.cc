#include "dta/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dta::proto {
namespace {

using common::ByteSpan;
using common::Bytes;

TelemetryKey key_of(std::initializer_list<std::uint8_t> bytes) {
  Bytes b(bytes);
  return TelemetryKey::from(ByteSpan(b));
}

TEST(DtaHeader, RoundTrip) {
  DtaHeader h;
  h.opcode = PrimitiveOp::kPostcard;
  h.immediate = true;
  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), DtaHeader::kSize);
  common::Cursor cur((ByteSpan(buf)));
  auto d = DtaHeader::decode(cur);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->opcode, PrimitiveOp::kPostcard);
  EXPECT_TRUE(d->immediate);
}

TEST(DtaHeader, RejectsWrongVersion) {
  Bytes buf = {9, 1, 0, 0};
  common::Cursor cur((ByteSpan(buf)));
  EXPECT_FALSE(DtaHeader::decode(cur));
}

TEST(KeyWrite, FullRoundTrip) {
  KeyWriteReport r;
  r.key = key_of({1, 2, 3, 4, 5});
  r.redundancy = 3;
  r.data = {0xAA, 0xBB, 0xCC, 0xDD};

  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.opcode, PrimitiveOp::kKeyWrite);
  const auto& back = std::get<KeyWriteReport>(parsed->report);
  EXPECT_EQ(back.key, r.key);
  EXPECT_EQ(back.redundancy, 3);
  EXPECT_EQ(back.data, r.data);
}

TEST(KeyWrite, RejectsZeroRedundancy) {
  KeyWriteReport r;
  r.key = key_of({1});
  r.redundancy = 0;
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  EXPECT_FALSE(decode_dta_payload(ByteSpan(payload)));
}

TEST(KeyIncrement, FullRoundTrip) {
  KeyIncrementReport r;
  r.key = key_of({9, 9, 9, 9});
  r.redundancy = 2;
  r.counter = 123456789ull;
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  const auto& back = std::get<KeyIncrementReport>(parsed->report);
  EXPECT_EQ(back.counter, 123456789ull);
}

TEST(Postcard, FullRoundTrip) {
  PostcardReport r;
  r.key = key_of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13});
  r.hop = 3;
  r.path_len = 5;
  r.redundancy = 2;
  r.value = 0x00012345;
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  const auto& back = std::get<PostcardReport>(parsed->report);
  EXPECT_EQ(back.hop, 3);
  EXPECT_EQ(back.path_len, 5);
  EXPECT_EQ(back.value, 0x00012345u);
}

TEST(Append, SingleEntryRoundTrip) {
  AppendReport r;
  r.list_id = 42;
  r.entry_size = 4;
  r.entries.push_back({1, 2, 3, 4});
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  const auto& back = std::get<AppendReport>(parsed->report);
  EXPECT_EQ(back.list_id, 42u);
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0], (Bytes{1, 2, 3, 4}));
}

TEST(Append, MultiEntryPacking) {
  AppendReport r;
  r.list_id = 7;
  r.entry_size = 18;
  for (int i = 0; i < 5; ++i) {
    r.entries.push_back(Bytes(18, static_cast<std::uint8_t>(i)));
  }
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  const auto& back = std::get<AppendReport>(parsed->report);
  ASSERT_EQ(back.entries.size(), 5u);
  EXPECT_EQ(back.entries[4][0], 4);
}

TEST(Append, ShortEntriesZeroPadded) {
  AppendReport r;
  r.entry_size = 8;
  r.entries.push_back({0xFF});  // 1 byte, padded to 8 on the wire
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  const auto& back = std::get<AppendReport>(parsed->report);
  ASSERT_EQ(back.entries[0].size(), 8u);
  EXPECT_EQ(back.entries[0][0], 0xFF);
  EXPECT_EQ(back.entries[0][7], 0);
}

TEST(Nack, RoundTrip) {
  NackReport r;
  r.dropped_op = PrimitiveOp::kAppend;
  r.dropped_count = 16;
  r.retry_after_us = 1500;
  const Bytes payload = encode_dta_payload(DtaHeader{}, r);
  auto parsed = decode_dta_payload(ByteSpan(payload));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.opcode, PrimitiveOp::kNack);
  const auto& back = std::get<NackReport>(parsed->report);
  EXPECT_EQ(back.dropped_count, 16u);
  EXPECT_EQ(back.retry_after_us, 1500u);
}

TEST(Decode, RejectsTruncatedPayloads) {
  KeyWriteReport r;
  r.key = key_of({1, 2, 3, 4, 5, 6, 7, 8});
  r.data = Bytes(20, 0xAB);
  Bytes payload = encode_dta_payload(DtaHeader{}, r);
  for (std::size_t cut = 1; cut < payload.size(); ++cut) {
    Bytes truncated(payload.begin(), payload.begin() + cut);
    EXPECT_FALSE(decode_dta_payload(ByteSpan(truncated))) << "cut=" << cut;
  }
}

TEST(Decode, RejectsUnknownOpcode) {
  Bytes buf = {kDtaVersion, 0x50, 0, 0, 1, 2, 3};
  EXPECT_FALSE(decode_dta_payload(ByteSpan(buf)));
}

TEST(TelemetryKey, TruncatesAt16) {
  Bytes big(32, 7);
  TelemetryKey k = TelemetryKey::from(ByteSpan(big));
  EXPECT_EQ(k.length, 16);
}

TEST(HeaderOpcode, FollowsVariantNotCaller) {
  // encode_dta_payload must fix up a mismatched header opcode.
  DtaHeader h;
  h.opcode = PrimitiveOp::kKeyWrite;
  AppendReport r;
  r.entry_size = 4;
  r.entries.push_back({1, 2, 3, 4});
  auto parsed = decode_dta_payload(ByteSpan(encode_dta_payload(h, r)));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.opcode, PrimitiveOp::kAppend);
}

// Property test: random reports of every primitive survive a round trip.
class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, RandomReportsRoundTrip) {
  common::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const auto kind = rng.next_below(4);
    Report report;
    switch (kind) {
      case 0: {
        KeyWriteReport r;
        Bytes kb(rng.next_below(16) + 1);
        for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next_u64());
        r.key = TelemetryKey::from(ByteSpan(kb));
        r.redundancy = static_cast<std::uint8_t>(1 + rng.next_below(8));
        r.data.resize(rng.next_below(64));
        for (auto& b : r.data) b = static_cast<std::uint8_t>(rng.next_u64());
        report = r;
        break;
      }
      case 1: {
        KeyIncrementReport r;
        Bytes kb(rng.next_below(16) + 1, 3);
        r.key = TelemetryKey::from(ByteSpan(kb));
        r.redundancy = static_cast<std::uint8_t>(1 + rng.next_below(8));
        r.counter = rng.next_u64();
        report = r;
        break;
      }
      case 2: {
        PostcardReport r;
        Bytes kb(13, static_cast<std::uint8_t>(rng.next_u64()));
        r.key = TelemetryKey::from(ByteSpan(kb));
        r.hop = static_cast<std::uint8_t>(rng.next_below(8));
        r.path_len = static_cast<std::uint8_t>(rng.next_below(9));
        r.redundancy = static_cast<std::uint8_t>(1 + rng.next_below(4));
        r.value = rng.next_u32();
        report = r;
        break;
      }
      default: {
        AppendReport r;
        r.list_id = rng.next_u32();
        r.entry_size = static_cast<std::uint8_t>(1 + rng.next_below(32));
        const auto n = 1 + rng.next_below(8);
        for (std::uint64_t i = 0; i < n; ++i) {
          r.entries.push_back(
              Bytes(r.entry_size, static_cast<std::uint8_t>(i)));
        }
        report = r;
        break;
      }
    }
    const Bytes payload = encode_dta_payload(DtaHeader{}, report);
    auto parsed = decode_dta_payload(ByteSpan(payload));
    ASSERT_TRUE(parsed) << "iter " << iter << " kind " << kind;
    const Bytes re = encode_dta_payload(parsed->header, parsed->report);
    EXPECT_EQ(re, payload) << "re-encode mismatch, kind " << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dta::proto

// Reporter switch dataplane tests: flow-consistent sampling and the
// packet -> postcard -> DTA frame pipeline, end-to-end into a collector.
#include <gtest/gtest.h>

#include "dtalib/fabric.h"
#include "reporter/int_switch.h"

namespace dta::reporter {
namespace {

telemetry::TracePacket packet_of(std::uint32_t flow_id) {
  telemetry::TracePacket p;
  p.flow = {0x0A000000 + flow_id, 0x0B000000 + flow_id,
            static_cast<std::uint16_t>(1000 + flow_id), 443, 6};
  p.flow_index = flow_id;
  return p;
}

TEST(IntSwitch, SamplingIsFlowConsistent) {
  // Every switch must make the same sampling decision for a packet.
  for (std::uint32_t f = 0; f < 1000; ++f) {
    const auto flow = packet_of(f).flow;
    const bool first = IntSwitch::sampled(flow, 100, 1);
    EXPECT_EQ(IntSwitch::sampled(flow, 100, 1), first);
  }
}

TEST(IntSwitch, SamplingRateApproximatesConfig) {
  int sampled = 0;
  constexpr int kFlows = 100000;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    if (IntSwitch::sampled(packet_of(f).flow, 200, 1)) ++sampled;
  }
  EXPECT_NEAR(static_cast<double>(sampled) / kFlows, 0.005, 0.001);
}

TEST(IntSwitch, SampleModZeroMeansAlways) {
  EXPECT_TRUE(IntSwitch::sampled(packet_of(1).flow, 0, 0));
}

TEST(IntSwitch, EmitsPostcardFrameForSampledPackets) {
  IntSwitchConfig config;
  config.switch_id = 0x42;
  config.my_hop = 2;
  config.sample_mod = 1;  // sample everything
  IntSwitch sw(config);

  const auto frame = sw.process(packet_of(1));
  ASSERT_TRUE(frame);
  // The frame must parse back into a postcard for this switch and hop.
  auto udp = net::parse_udp_frame(frame->span());
  ASSERT_TRUE(udp);
  EXPECT_EQ(udp->udp.dst_port, net::kDtaUdpPort);
  auto parsed = proto::decode_dta_payload(
      frame->span().subspan(udp->payload_offset, udp->payload_length));
  ASSERT_TRUE(parsed);
  const auto& card = std::get<proto::PostcardReport>(parsed->report);
  EXPECT_EQ(card.hop, 2);
  EXPECT_EQ(card.value, 0x42u);
  EXPECT_EQ(sw.stats().postcards_emitted, 1u);
}

TEST(IntSwitch, UnsampledPacketsPassSilently) {
  IntSwitchConfig config;
  config.sample_mod = 1u << 30;  // effectively never
  config.sample_keep = 0;
  IntSwitch sw(config);
  EXPECT_FALSE(sw.process(packet_of(1)).has_value());
  EXPECT_EQ(sw.stats().packets_seen, 1u);
  EXPECT_EQ(sw.stats().packets_sampled, 0u);
}

TEST(IntSwitchPath, AllHopsEmitForSampledPacket) {
  IntSwitchPath path({10, 20, 30, 40, 50}, /*sample_mod=*/1);
  const auto frames = path.process(packet_of(7));
  EXPECT_EQ(frames.size(), 5u);
}

TEST(IntSwitchPath, PathPostcardsAssembleAtCollector) {
  // Full loop: trace packet -> 5 switch dataplanes -> translator ->
  // collector -> path query.
  FabricConfig config;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 12;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 128; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  Fabric fabric(config);

  IntSwitchPath path({11, 22, 33, 44, 55}, /*sample_mod=*/1);
  const auto pkt = packet_of(3);
  for (auto& frame : path.process(pkt)) {
    fabric.translator().ingest(std::move(frame), 0);
  }

  const auto kb = pkt.flow.to_bytes();
  const auto key = proto::TelemetryKey::from(
      common::ByteSpan(kb.data(), kb.size()));
  const auto result = fabric.collector().service().postcarding()->query(key, 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values,
            (std::vector<std::uint32_t>{11, 22, 33, 44, 55}));
}

TEST(IntSwitchPath, UnsampledFlowsNeverReachCollector) {
  IntSwitchPath path({1, 2, 3}, /*sample_mod=*/1u << 20);
  int total = 0;
  for (std::uint32_t f = 0; f < 50; ++f) {
    total += static_cast<int>(path.process(packet_of(f)).size());
  }
  EXPECT_EQ(total, 0);
}

}  // namespace
}  // namespace dta::reporter

// Shared factory for the backend-conformance kit: one place that knows
// how to build every dta::Backend kind from one store geometry, plus
// the store-image and query-result collectors the differential tests
// compare across backends.
//
// Four kinds:
//   kLocal   — sharded CollectorRuntime, direct verb execution
//   kCluster — 2 hosts x M shards behind the two-level router
//   kFabric  — the wire-fidelity path (reporter UDP -> translator ->
//              RoCE -> collector NIC), one host, one shard
//   kReplay  — ReplayBackend recording over a LocalBackend
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "dtalib/client.h"
#include "dtalib/fabric_backend.h"
#include "dtalib/replay_backend.h"
#include "telemetry/trace.h"

namespace dta::testing {

enum class BackendKind { kLocal, kCluster, kFabric, kReplay };

inline const char* kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kLocal: return "Local";
    case BackendKind::kCluster: return "Cluster";
    case BackendKind::kFabric: return "Fabric";
    case BackendKind::kReplay: return "Replay";
  }
  return "?";
}

inline std::vector<BackendKind> all_backend_kinds() {
  return {BackendKind::kLocal, BackendKind::kCluster, BackendKind::kFabric,
          BackendKind::kReplay};
}

// The conformance store geometry (the client_api_test config, with the
// shard count as a knob: the cross-backend differential tests use
// num_shards = 1 so every backend — the Fabric is single-shard by
// construction — has byte-identical store geometry).
inline collector::CollectorRuntimeConfig conformance_host_config(
    collector::ThreadMode mode = collector::ThreadMode::kInline,
    std::uint32_t num_shards = 2) {
  collector::CollectorRuntimeConfig config;
  config.num_shards = num_shards;
  config.thread_mode = mode;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  collector::AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.append = ap;
  config.append_batch_size = 1;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 4096; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  return config;
}

inline std::unique_ptr<Backend> make_backend(
    BackendKind kind, const collector::CollectorRuntimeConfig& config,
    translator::PartitionPolicy policy =
        translator::PartitionPolicy::kReplicate) {
  switch (kind) {
    case BackendKind::kLocal:
      return std::make_unique<LocalBackend>(config);
    case BackendKind::kCluster: {
      ClusterRuntimeConfig cluster;
      cluster.num_hosts = 2;
      cluster.policy = policy;
      cluster.host = config;
      return std::make_unique<ClusterBackend>(cluster);
    }
    case BackendKind::kFabric:
      // The Fabric is inherently synchronous and single-shard; the
      // thread mode and shard count of `config` do not apply to it.
      return std::make_unique<FabricBackend>(
          FabricBackend::fabric_config_from(config));
    case BackendKind::kReplay:
      return std::make_unique<ReplayBackend>(
          std::make_unique<LocalBackend>(config));
  }
  return nullptr;
}

inline Client make_client(BackendKind kind,
                          collector::ThreadMode mode =
                              collector::ThreadMode::kInline,
                          translator::PartitionPolicy policy =
                              translator::PartitionPolicy::kReplicate) {
  return Client(make_backend(kind, conformance_host_config(mode), policy));
}

// How many copies of each report the backend ingests (kReplicate
// clusters ingest one per host).
inline std::uint64_t ingest_copies(BackendKind kind) {
  return kind == BackendKind::kCluster ? 2u : 1u;
}

// --- store images -----------------------------------------------------------
// Every registered store region of every shard/host of the backend,
// deep-copied, in a deterministic order — the byte-level oracle of the
// determinism tests: two replays of the same trace must produce equal
// images, memcmp'd region by region.

inline void append_snapshot_images(const collector::StoreSnapshot& snap,
                                   std::vector<common::Bytes>& out) {
  const rdma::MemoryRegion* regions[] = {
      snap.keywrite_mem(), snap.keyincrement_mem(), snap.append_mem(),
      snap.postcarding_mem()};
  for (const rdma::MemoryRegion* region : regions) {
    if (!region) {
      out.emplace_back();
      continue;
    }
    const std::uint8_t* data = region->data();
    out.emplace_back(data, data + region->length());
  }
}

inline std::vector<common::Bytes> store_images(Backend& backend) {
  std::vector<common::Bytes> out;
  if (auto* replay = dynamic_cast<ReplayBackend*>(&backend)) {
    return store_images(replay->inner());
  }
  if (auto* local = dynamic_cast<LocalBackend*>(&backend)) {
    auto& runtime = local->runtime();
    for (std::uint32_t s = 0; s < runtime.num_shards(); ++s) {
      append_snapshot_images(*runtime.snapshot_shard_fresh(s), out);
    }
    return out;
  }
  if (auto* cluster = dynamic_cast<ClusterBackend*>(&backend)) {
    auto& runtime = cluster->cluster();
    for (std::uint32_t h = 0; h < runtime.num_hosts(); ++h) {
      for (std::uint32_t s = 0; s < runtime.host(h).num_shards(); ++s) {
        append_snapshot_images(*runtime.host(h).snapshot_shard_fresh(s), out);
      }
    }
    return out;
  }
  if (auto* fabric = dynamic_cast<FabricBackend*>(&backend)) {
    (void)fabric->flush();
    const collector::StoreSnapshot snap(
        fabric->fabric().collector().service());
    append_snapshot_images(snap, out);
    return out;
  }
  return out;
}

inline bool images_equal(const std::vector<common::Bytes>& a,
                         const std::vector<common::Bytes>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (!a[i].empty() &&
        std::memcmp(a[i].data(), b[i].data(), a[i].size()) != 0) {
      return false;
    }
  }
  return true;
}

// --- deterministic workloads ------------------------------------------------

// The standard conformance workload: a deterministic mix of all four
// primitives synthesized from the traffic model, matched to
// conformance_host_config's geometry.
inline std::vector<proto::ParsedDta> conformance_workload(
    std::uint32_t count, std::uint64_t seed = 42) {
  telemetry::TraceConfig trace;
  trace.seed = seed;
  trace.num_flows = 512;
  telemetry::TraceGenerator gen(trace);
  telemetry::ReportMix mix;
  mix.num_lists = 8;
  mix.postcard_hops = 5;
  mix.postcard_value_space = 4096;
  return telemetry::synthesize_reports(gen, count, mix);
}

// --- query-result collection ------------------------------------------------
// Everything the client API can observe about the stores, collected
// through the public facade only: point gets over the probe keys, CMS
// estimates, full event-list reads, recovered paths. Two backends that
// ingested the same trace must collect equal results.

struct ObservedResults {
  std::vector<std::optional<common::Bytes>> keywrite;
  std::vector<std::optional<std::uint64_t>> counters;
  std::vector<std::vector<common::Bytes>> lists;
  std::vector<std::optional<std::vector<std::uint32_t>>> paths;

  bool operator==(const ObservedResults& o) const {
    return keywrite == o.keywrite && counters == o.counters &&
           lists == o.lists && paths == o.paths;
  }
};

inline ObservedResults observe(Client& client,
                               const std::vector<proto::TelemetryKey>& probes,
                               std::uint32_t num_lists,
                               std::uint64_t list_read_count) {
  ObservedResults out;
  auto table = client.keywrite();
  auto counters = client.counters();
  auto postcards = client.postcards();
  for (const auto& key : probes) {
    const auto value = table.get(key);
    out.keywrite.push_back(value.ok()
                               ? std::optional<common::Bytes>(*value)
                               : std::nullopt);
    const auto estimate = counters.get(key);
    out.counters.push_back(estimate.ok()
                               ? std::optional<std::uint64_t>(*estimate)
                               : std::nullopt);
    const auto path = postcards.path_of(key);
    out.paths.push_back(
        path.ok() ? std::optional<std::vector<std::uint32_t>>(*path)
                  : std::nullopt);
  }
  for (std::uint32_t list = 0; list < num_lists; ++list) {
    const auto events = client.events(list).max(list_read_count).run();
    out.lists.push_back(events.ok() ? events->entries
                                    : std::vector<common::Bytes>{});
  }
  return out;
}

// The probe keys of the conformance workload: every distinct flow key
// the generator can emit under `num_flows`.
inline std::vector<proto::TelemetryKey> conformance_probes(
    std::uint32_t num_flows = 512, std::uint64_t seed = 42) {
  telemetry::TraceConfig trace;
  trace.seed = seed;
  trace.num_flows = num_flows;
  const telemetry::TraceGenerator gen(trace);
  std::vector<proto::TelemetryKey> probes;
  probes.reserve(num_flows);
  for (std::uint32_t i = 0; i < num_flows; ++i) {
    probes.push_back(flow_key(gen.flow_at(i)));
  }
  return probes;
}

}  // namespace dta::testing

// MUST NOT COMPILE under clang -Wthread-safety -Werror:
// reads and writes of a DTA_GUARDED_BY field without holding its mutex.
#include "common/thread_annotations.h"

struct Counter {
  dta::Mutex mu;
  int value DTA_GUARDED_BY(mu) = 0;
};

int unguarded_read(Counter& c) {
  return c.value;  // requires holding c.mu
}

void unguarded_write(Counter& c) {
  c.value = 7;  // requires holding c.mu exclusively
}

// MUST NOT COMPILE under clang -Wthread-safety -Werror:
// calling a DTA_EXCLUDES entry point with its mutex already held (the
// self-deadlock shape for a non-recursive mutex).
#include "common/thread_annotations.h"

struct Cache {
  dta::Mutex mu;
  void refresh() DTA_EXCLUDES(mu);
};

void reenter(Cache& c) {
  dta::MutexLock lock(c.mu);
  c.refresh();  // must not be called while holding c.mu
}

// MUST NOT COMPILE under clang -Werror: keeping a raw pointer obtained
// from a temporary ByteView — the view's snapshot pin dies with the
// temporary, so DTA_LIFETIMEBOUND on ByteView::data() rejects it
// (-Wdangling, default-on).
#include <cstdint>

#include "dtalib/byte_view.h"

dta::ByteView query();

const std::uint8_t* dangling_data() {
  const std::uint8_t* p = query().data();  // pin released here
  return p;
}

// MUST NOT COMPILE under clang -Wthread-safety -Werror:
// calling a DTA_REQUIRES function without the required mutex held.
#include "common/thread_annotations.h"

struct Registry {
  dta::Mutex mu;
  int admitted DTA_GUARDED_BY(mu) = 0;

  void admit_locked() DTA_REQUIRES(mu) { admitted += 1; }
};

void admit(Registry& r) {
  r.admit_locked();  // requires holding r.mu
}

// MUST COMPILE everywhere: the lifetimebound surface used correctly —
// every borrow is from a named owner that outlives it, and temporaries
// are consumed within their full expression or detached by copy.
// Positive control for the fail_lifetime_* fixtures; under GCC it
// proves DTA_LIFETIMEBOUND expands to a no-op.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "dtalib/byte_view.h"
#include "dtalib/status.h"

dta::ByteView query_view();
dta::Expected<std::vector<int>> query_values();
dta::Status submit();

std::size_t correct_usage() {
  // Borrow from a named owner.
  const std::vector<std::uint8_t> owner{1, 2, 3};
  dta::common::ByteSpan bytes = owner;

  // Consume a temporary within its full expression.
  std::size_t total = query_view().size();

  // Keep the view itself (the pin) and borrow from it.
  const dta::ByteView view = query_view();
  const std::uint8_t* p = view.data();
  if (p != nullptr) total += view.size();

  // Copy/move values out of temporaries instead of borrowing.
  std::vector<int> values = dta::must(query_values());
  std::string message = submit().message();

  return total + bytes.size() + values.size() + message.size();
}

// MUST NOT COMPILE under clang -Werror: binding a reference to the
// value of a temporary Expected — DTA_LIFETIMEBOUND on
// Expected::value() rejects it (-Wdangling, default-on). Copy or move
// the value out instead.
#include <vector>

#include "dtalib/status.h"

dta::Expected<std::vector<int>> query();

int dangling_value() {
  const std::vector<int>& v = query().value();  // Expected died here
  return v.empty() ? 0 : v.front();
}

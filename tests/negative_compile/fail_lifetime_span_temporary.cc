// MUST NOT COMPILE under clang -Werror: a ByteSpan bound to a
// temporary container (destroyed at the end of the statement) trips
// the DTA_LIFETIMEBOUND annotation on Span's converting constructor
// (-Wdangling, default-on).
#include <cstdint>
#include <vector>

#include "common/bytes.h"

std::size_t dangling_span() {
  dta::common::ByteSpan bytes = std::vector<std::uint8_t>{1, 2, 3};
  return bytes.size();  // the vector died on the previous line
}

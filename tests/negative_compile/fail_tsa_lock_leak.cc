// MUST NOT COMPILE under clang -Wthread-safety -Werror:
// a manually acquired dta::Mutex never released on one path.
#include "common/thread_annotations.h"

void leak(dta::Mutex& mu, bool flaky) {
  mu.lock();
  if (flaky) {
    return;  // mu still held
  }
  mu.unlock();
}

// MUST COMPILE everywhere: the annotated surface used correctly.
// Under clang this is the positive control for the fail_tsa_* fixtures
// (same headers, same flags, zero -Wthread-safety findings); under GCC
// it proves every DTA_* macro expands to a no-op.
#include "common/thread_annotations.h"

struct Registry {
  dta::Mutex mu;
  int admitted DTA_GUARDED_BY(mu) = 0;

  void admit_locked() DTA_REQUIRES(mu) { admitted += 1; }
  void refresh() DTA_EXCLUDES(mu) {
    dta::MutexLock lock(mu);
    admitted = 0;
  }
};

int correct_usage() {
  Registry r;
  {
    dta::MutexLock lock(r.mu);
    r.admit_locked();
  }
  r.refresh();
  r.mu.lock();
  int copy = r.admitted;
  r.mu.unlock();
  if (r.mu.try_lock()) {
    r.admitted = copy;
    r.mu.unlock();
  }
  return copy;
}

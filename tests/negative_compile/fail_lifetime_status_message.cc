// MUST NOT COMPILE under clang -Werror: binding a reference to the
// message of a temporary Status — DTA_LIFETIMEBOUND on
// Status::message() rejects it (-Wdangling, default-on).
#include <string>

#include "dtalib/status.h"

dta::Status submit();

std::size_t dangling_message() {
  const std::string& m = submit().message();  // Status died here
  return m.size();
}

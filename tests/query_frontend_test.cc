// Tests for the typed query frontend and the checksum-width (b) knob —
// including the empirical wrong-output measurement that only short
// checksums make observable (Appendix A.5's trade-off).
#include <gtest/gtest.h>

#include "collector/query_frontend.h"
#include "dta/report_builders.h"
#include "dtalib/fabric.h"
#include "telemetry/records.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

FabricConfig frontend_config() {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 15;
  kw.value_bytes = 4;
  config.keywrite = kw;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 13;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 512; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  collector::AppendSetup ap;
  ap.num_lists = 4;
  ap.entries_per_list = 256;
  ap.entry_bytes = 18;
  config.append = ap;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  config.translator.append_batch_size = 1;
  return config;
}

net::FiveTuple flow_of(std::uint32_t i) {
  return {0x0A000000 + i, 0x0B000000 + i,
          static_cast<std::uint16_t>(1000 + i), 443, 6};
}

TEST(QueryFrontend, FlowMetricRoundTrip) {
  Fabric fabric(frontend_config());
  collector::QueryFrontend db(&fabric.collector().service());

  telemetry::MarpleTcpTimeout record;
  record.flow = flow_of(1);
  record.timeouts = 9;
  fabric.report(record.to_dta(2));

  const auto metric = db.flow_metric(flow_of(1), 2);
  ASSERT_TRUE(metric);
  EXPECT_EQ(*metric, 9u);
  EXPECT_FALSE(db.flow_metric(flow_of(999), 2));
}

TEST(QueryFrontend, FlowPathRoundTrip) {
  Fabric fabric(frontend_config());
  collector::QueryFrontend db(&fabric.collector().service());

  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    telemetry::IntPostcard card;
    card.flow = flow_of(2);
    card.hop = hop;
    card.path_len = 5;
    card.value = 40 + hop;
    fabric.report(card.to_dta(1));
  }
  const auto path = db.flow_path(flow_of(2), 1);
  ASSERT_TRUE(path);
  EXPECT_EQ(*path, (std::vector<std::uint32_t>{40, 41, 42, 43, 44}));
}

TEST(QueryFrontend, CountersAccumulate) {
  Fabric fabric(frontend_config());
  collector::QueryFrontend db(&fabric.collector().service());

  telemetry::TurboFlowRecord rec;
  rec.flow = flow_of(3);
  rec.packets = 25;
  fabric.report(rec.to_dta(2));
  fabric.report(rec.to_dta(2));
  EXPECT_EQ(db.flow_counter(flow_of(3), 2), 50u);

  telemetry::MarpleHostCounter host;
  host.src_ip = 0xC0A80101;
  host.count = 7;
  fabric.report(host.to_dta(2));
  EXPECT_EQ(db.host_counter(0xC0A80101, 2), 7u);
  EXPECT_EQ(db.host_counter(0xC0A80199, 2), 0u);
}

TEST(QueryFrontend, EventConsumptionDecodesLossEvents) {
  Fabric fabric(frontend_config());
  collector::QueryFrontend db(&fabric.collector().service());

  for (std::uint32_t i = 0; i < 6; ++i) {
    telemetry::NetSeerLossEvent ev;
    ev.flow = flow_of(i);
    ev.packet_seq = 100 + i;
    ev.reason = static_cast<std::uint8_t>(i % 3);
    fabric.report(ev.to_dta(2));
  }
  std::vector<collector::QueryFrontend::LossEvent> events;
  const std::size_t n = db.consume_events(
      2, 6, [&](common::ByteSpan entry) {
        events.push_back(collector::QueryFrontend::decode_loss_event(entry));
      });
  ASSERT_EQ(n, 6u);
  EXPECT_EQ(events[0].packet_seq, 100u);
  EXPECT_EQ(events[5].reason, 2);
  EXPECT_EQ(events[3].flow, flow_of(3));
}

TEST(QueryFrontend, MaxEventsBoundsTheDrain) {
  Fabric fabric(frontend_config());
  collector::QueryFrontend db(&fabric.collector().service());
  int handled = 0;
  EXPECT_EQ(db.consume_events(0, 100, [&](ByteSpan) { ++handled; }, 3), 3u);
  EXPECT_EQ(handled, 3);
}

// -------------------------------------------------- checksum width (b)

// With b=8 checksums, overwritten slots collide with the query key's
// checksum with probability 2^-8 — wrong outputs become measurable at
// high load, exactly as eq. (4) predicts; with b=32 they never appear.
class ChecksumWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChecksumWidthTest, WrongOutputRateTracksEq4) {
  const unsigned bits = GetParam();
  constexpr std::uint64_t kSlots = 1 << 14;
  constexpr int kProbes = 3000;

  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = kSlots;
  kw.value_bytes = 4;
  kw.checksum_bits = bits;
  config.keywrite = kw;
  Fabric fabric(config);

  auto write = [&](std::uint64_t id) {
    proto::KeyWriteReport r;
    r.key = key_of(id);
    r.redundancy = 1;
    common::put_u32(r.data, static_cast<std::uint32_t>(id));
    fabric.report_direct(reports::wrap(r));
  };

  for (std::uint64_t i = 0; i < kProbes; ++i) write(i);
  // alpha = 2: every probe slot is almost surely overwritten.
  for (std::uint64_t i = 0; i < 2 * kSlots; ++i) write((1ull << 32) | i);

  int wrong = 0;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    const auto result =
        fabric.collector().service().keywrite()->query(key_of(i), 1);
    if (result.status == collector::QueryStatus::kHit &&
        common::load_u32(result.value.data()) != i) {
      ++wrong;
    }
  }

  const double rate = static_cast<double>(wrong) / kProbes;
  if (bits <= 8) {
    // eq.(4) with q~0.86, N=1, b=8: ~3.4e-3. Expect the same order.
    EXPECT_GT(wrong, 0);
    EXPECT_LT(rate, 0.02);
  } else {
    // 16+ bit checksums: wrong outputs must be absent at this scale.
    EXPECT_EQ(wrong, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ChecksumWidthTest,
                         ::testing::Values(8u, 16u, 32u),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dta

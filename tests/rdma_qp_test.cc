#include <gtest/gtest.h>

#include "rdma/memory_region.h"
#include "rdma/queue_pair.h"

namespace dta::rdma {
namespace {

using common::ByteSpan;
using common::Bytes;

class QpTest : public ::testing::Test {
 protected:
  QpTest() : qp_(0x20, &pd_) {
    mr_ = pd_.register_region(4096, kRemoteWrite | kRemoteAtomic);
    qp_.to_init();
    qp_.to_rtr(100);
  }

  Bytes make_write(std::uint32_t psn, std::uint64_t va, const Bytes& payload,
                   std::uint32_t qpn = 0x20) {
    Bth bth;
    bth.opcode = Opcode::kWriteOnly;
    bth.dest_qpn = qpn;
    bth.psn = psn;
    Reth reth;
    reth.virtual_addr = va;
    reth.rkey = mr_->rkey();
    reth.dma_length = static_cast<std::uint32_t>(payload.size());
    return build_roce_datagram(bth, &reth, nullptr, nullptr, nullptr,
                               ByteSpan(payload));
  }

  Bytes make_fetch_add(std::uint32_t psn, std::uint64_t va,
                       std::uint64_t add) {
    Bth bth;
    bth.opcode = Opcode::kFetchAdd;
    bth.dest_qpn = 0x20;
    bth.psn = psn;
    AtomicEth eth;
    eth.virtual_addr = va;
    eth.rkey = mr_->rkey();
    eth.swap_add = add;
    return build_roce_datagram(bth, nullptr, &eth, nullptr, nullptr, {});
  }

  ProtectionDomain pd_;
  MemoryRegion* mr_ = nullptr;
  QueuePair qp_;
};

TEST_F(QpTest, WriteLandsInMemory) {
  const Bytes payload = {0xAA, 0xBB, 0xCC, 0xDD};
  auto r = qp_.process(ByteSpan(make_write(100, mr_->base_va() + 8, payload)));
  EXPECT_TRUE(r.executed);
  EXPECT_EQ(mr_->data()[8], 0xAA);
  EXPECT_EQ(mr_->data()[11], 0xDD);
  EXPECT_EQ(qp_.counters().writes_executed, 1u);
  EXPECT_EQ(qp_.counters().bytes_written, 4u);
}

TEST_F(QpTest, SequentialPsnsExecute) {
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto r = qp_.process(
        ByteSpan(make_write(100 + i, mr_->base_va(), Bytes{1})));
    EXPECT_TRUE(r.executed) << "psn " << 100 + i;
  }
  EXPECT_EQ(qp_.expected_psn(), 110u);
}

TEST_F(QpTest, OutOfOrderPsnNaks) {
  // Skip PSN 100: a future PSN must be NAK'd and not executed.
  auto r = qp_.process(ByteSpan(make_write(105, mr_->base_va(), Bytes{1})));
  EXPECT_FALSE(r.executed);
  ASSERT_TRUE(r.ack);
  EXPECT_EQ(r.ack->syndrome, AethSyndrome::kPsnSeqNak);
  EXPECT_EQ(qp_.counters().psn_naks, 1u);
  EXPECT_EQ(qp_.expected_psn(), 100u);  // unchanged
}

TEST_F(QpTest, DuplicatePsnAckedNotReExecuted) {
  qp_.process(ByteSpan(make_write(100, mr_->base_va(), Bytes{0x11})));
  // Same PSN again with different data: must be treated as duplicate.
  auto r = qp_.process(ByteSpan(make_write(100, mr_->base_va(), Bytes{0x99})));
  EXPECT_FALSE(r.executed);
  ASSERT_TRUE(r.ack);
  EXPECT_EQ(r.ack->syndrome, AethSyndrome::kAck);
  EXPECT_EQ(mr_->data()[0], 0x11);  // original data intact
}

TEST_F(QpTest, FetchAddReturnsOriginalAndAdds) {
  common::store_u64(mr_->data(), 40);
  auto r = qp_.process(ByteSpan(make_fetch_add(100, mr_->base_va(), 2)));
  EXPECT_TRUE(r.executed);
  ASSERT_TRUE(r.atomic_original);
  EXPECT_EQ(*r.atomic_original, 40u);
  EXPECT_EQ(common::load_u64(mr_->data()), 42u);
  EXPECT_EQ(qp_.counters().atomics_executed, 1u);
}

TEST_F(QpTest, FetchAddRequiresAlignment) {
  auto r = qp_.process(ByteSpan(make_fetch_add(100, mr_->base_va() + 3, 1)));
  EXPECT_FALSE(r.executed);
  ASSERT_TRUE(r.ack);
  EXPECT_EQ(r.ack->syndrome, AethSyndrome::kRemoteAccessNak);
}

TEST_F(QpTest, OutOfBoundsWriteNaksAndErrorsQp) {
  auto r = qp_.process(
      ByteSpan(make_write(100, mr_->base_va() + 4094, Bytes(8, 1))));
  EXPECT_FALSE(r.executed);
  ASSERT_TRUE(r.ack);
  EXPECT_EQ(r.ack->syndrome, AethSyndrome::kRemoteAccessNak);
  EXPECT_EQ(qp_.state(), QpState::kError);
}

TEST_F(QpTest, WrongRkeyNaks) {
  Bth bth;
  bth.opcode = Opcode::kWriteOnly;
  bth.dest_qpn = 0x20;
  bth.psn = 100;
  Reth reth;
  reth.virtual_addr = mr_->base_va();
  reth.rkey = 0xDEAD;
  reth.dma_length = 1;
  const Bytes payload = {1};
  auto r = qp_.process(ByteSpan(build_roce_datagram(
      bth, &reth, nullptr, nullptr, nullptr, ByteSpan(payload))));
  EXPECT_FALSE(r.executed);
  EXPECT_EQ(qp_.counters().access_naks, 1u);
}

TEST_F(QpTest, DmaLengthMismatchNaks) {
  Bth bth;
  bth.opcode = Opcode::kWriteOnly;
  bth.dest_qpn = 0x20;
  bth.psn = 100;
  Reth reth;
  reth.virtual_addr = mr_->base_va();
  reth.rkey = mr_->rkey();
  reth.dma_length = 16;  // but only 4 bytes of payload
  const Bytes payload = {1, 2, 3, 4};
  auto r = qp_.process(ByteSpan(build_roce_datagram(
      bth, &reth, nullptr, nullptr, nullptr, ByteSpan(payload))));
  EXPECT_FALSE(r.executed);
}

TEST_F(QpTest, CorruptIcrcSilentlyDropped) {
  Bytes dgram = make_write(100, mr_->base_va(), Bytes{5});
  dgram[dgram.size() - 1] ^= 1;
  auto r = qp_.process(ByteSpan(dgram));
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.ack);
  EXPECT_EQ(qp_.counters().icrc_drops, 1u);
}

TEST_F(QpTest, WrongQpnIgnored) {
  auto r = qp_.process(ByteSpan(make_write(100, mr_->base_va(), Bytes{5},
                                           /*qpn=*/0x99)));
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.ack);
}

TEST_F(QpTest, SendDeliversToReceiveQueue) {
  Bth bth;
  bth.opcode = Opcode::kSendOnly;
  bth.dest_qpn = 0x20;
  bth.psn = 100;
  const Bytes payload = {7, 7, 7};
  auto r = qp_.process(ByteSpan(build_roce_datagram(
      bth, nullptr, nullptr, nullptr, nullptr, ByteSpan(payload))));
  EXPECT_TRUE(r.executed);
  auto rx = qp_.poll_receive();
  ASSERT_TRUE(rx);
  EXPECT_EQ(*rx, payload);
  EXPECT_FALSE(qp_.poll_receive());
}

TEST_F(QpTest, WriteWithImmediateRaisesCompletion) {
  Bth bth;
  bth.opcode = Opcode::kWriteOnlyImm;
  bth.dest_qpn = 0x20;
  bth.psn = 100;
  Reth reth;
  reth.virtual_addr = mr_->base_va();
  reth.rkey = mr_->rkey();
  reth.dma_length = 2;
  const std::uint32_t imm = 0x77;
  const Bytes payload = {1, 2};
  qp_.process(ByteSpan(build_roce_datagram(bth, &reth, nullptr, &imm, nullptr,
                                           ByteSpan(payload))));
  auto c = qp_.poll_completion();
  ASSERT_TRUE(c);
  ASSERT_TRUE(c->immediate);
  EXPECT_EQ(*c->immediate, 0x77u);
  EXPECT_EQ(qp_.counters().immediates, 1u);
}

TEST_F(QpTest, PlainWriteRaisesNoCompletion) {
  qp_.process(ByteSpan(make_write(100, mr_->base_va(), Bytes{1})));
  EXPECT_FALSE(qp_.poll_completion());
}

TEST_F(QpTest, NotRtrIgnoresPackets) {
  QueuePair fresh(0x30, &pd_);
  auto r = fresh.process(ByteSpan(make_write(0, mr_->base_va(), Bytes{1})));
  EXPECT_FALSE(r.executed);
}

TEST(ProtectionDomain, RegionsDoNotAlias) {
  ProtectionDomain pd;
  MemoryRegion* a = pd.register_region(1000, kRemoteWrite);
  MemoryRegion* b = pd.register_region(1000, kRemoteWrite);
  EXPECT_NE(a->rkey(), b->rkey());
  EXPECT_GE(b->base_va(), a->base_va() + 1000);
  EXPECT_TRUE(a->contains(a->base_va(), 1000));
  EXPECT_FALSE(a->contains(a->base_va() + 999, 2));
  EXPECT_EQ(pd.find(a->rkey()), a);
  EXPECT_EQ(pd.find(0xFFFF), nullptr);
}

TEST(MemoryRegion, OverflowGuard) {
  ProtectionDomain pd;
  MemoryRegion* mr = pd.register_region(64, kRemoteWrite);
  EXPECT_FALSE(mr->contains(~0ull - 4, 16));
}

}  // namespace
}  // namespace dta::rdma

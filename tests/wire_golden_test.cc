// Golden wire-format vectors.
//
// These lock the on-wire encodings (DTA protocol, RoCEv2 headers,
// Ethernet/IPv4/UDP) against accidental change: interoperability with
// captures and with the hardware prototype's formats depends on byte
// stability, not just round-trip symmetry. If an encoding change is
// intentional, update the hex strings and bump kDtaVersion.
#include <gtest/gtest.h>

#include "dta/wire.h"
#include "net/headers.h"
#include "rdma/roce.h"
#include "translator/crc_unit.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;

std::string hex_of(const Bytes& b) { return common::to_hex(ByteSpan(b)); }

TEST(Golden, DtaHeader) {
  proto::DtaHeader h;
  h.opcode = proto::PrimitiveOp::kKeyWrite;
  h.immediate = true;
  Bytes out;
  h.encode(out);
  EXPECT_EQ(hex_of(out), "02010100");
}

TEST(Golden, KeyWritePayload) {
  proto::KeyWriteReport r;
  r.key = proto::TelemetryKey::from(ByteSpan(Bytes{0xAA, 0xBB, 0xCC}));
  r.redundancy = 2;
  r.data = {0x11, 0x22, 0x33, 0x44};
  const Bytes payload = proto::encode_dta_payload(proto::DtaHeader{}, r);
  //          ver op imm rsv  N  klen key       dlen data
  EXPECT_EQ(hex_of(payload), "02010000" "02" "03" "aabbcc" "04" "11223344");
}

TEST(Golden, KeyIncrementPayload) {
  proto::KeyIncrementReport r;
  r.key = proto::TelemetryKey::from(ByteSpan(Bytes{0x01}));
  r.redundancy = 1;
  r.counter = 0x1122334455667788ull;
  const Bytes payload = proto::encode_dta_payload(proto::DtaHeader{}, r);
  EXPECT_EQ(hex_of(payload), "02030000" "01" "01" "01" "1122334455667788");
}

TEST(Golden, PostcardPayload) {
  proto::PostcardReport r;
  r.key = proto::TelemetryKey::from(ByteSpan(Bytes{0xDE, 0xAD}));
  r.hop = 3;
  r.path_len = 5;
  r.redundancy = 2;
  r.value = 0x00C0FFEE;
  const Bytes payload = proto::encode_dta_payload(proto::DtaHeader{}, r);
  EXPECT_EQ(hex_of(payload), "02040000" "02" "dead" "03" "05" "02" "00c0ffee");
}

TEST(Golden, AppendPayload) {
  proto::AppendReport r;
  r.list_id = 0x0000002A;
  r.entry_size = 4;
  r.entries.push_back({0xCA, 0xFE, 0xBA, 0xBE});
  const Bytes payload = proto::encode_dta_payload(proto::DtaHeader{}, r);
  EXPECT_EQ(hex_of(payload), "02020000" "0000002a" "04" "01" "cafebabe");
}

TEST(Golden, NackPayload) {
  proto::NackReport r;
  r.dropped_op = proto::PrimitiveOp::kAppend;
  r.dropped_count = 16;
  r.retry_after_us = 0x000003E8;
  const Bytes payload = proto::encode_dta_payload(proto::DtaHeader{}, r);
  EXPECT_EQ(hex_of(payload), "02fe0000" "02" "00000010" "000003e8");
}

TEST(Golden, RoceBth) {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kWriteOnly;
  bth.dest_qpn = 0x000011;
  bth.psn = 0x001000;
  bth.ack_request = true;
  Bytes out;
  bth.encode(out);
  // opcode 0a | flags 40(mig) | pkey ffff | qpn 00000011 | ack|psn 80001000
  EXPECT_EQ(hex_of(out), "0a40ffff" "00000011" "80001000");
}

TEST(Golden, RoceReth) {
  rdma::Reth reth;
  reth.virtual_addr = 0x0000100000000040ull;
  reth.rkey = 0x00001001;
  reth.dma_length = 8;
  Bytes out;
  reth.encode(out);
  EXPECT_EQ(hex_of(out), "0000100000000040" "00001001" "00000008");
}

TEST(Golden, RoceAtomicEth) {
  rdma::AtomicEth eth;
  eth.virtual_addr = 0x2000;
  eth.rkey = 7;
  eth.swap_add = 42;
  Bytes out;
  eth.encode(out);
  EXPECT_EQ(hex_of(out),
            "0000000000002000" "00000007" "000000000000002a"
            "0000000000000000");
}

TEST(Golden, Ipv4HeaderWithChecksum) {
  net::Ipv4Header ip;
  ip.src_ip = 0x0A000001;
  ip.dst_ip = 0x0A0000C0;
  ip.total_length = 46;
  ip.ttl = 64;
  Bytes out;
  ip.encode(out);
  // version/ihl 45, dscp 00, len 002e, id 0000, DF 4000, ttl 40,
  // proto 11 (UDP), csum 25ff, src, dst.
  EXPECT_EQ(hex_of(out), "4500002e" "00004000" "401125ff" "0a000001"
                         "0a0000c0");
}

TEST(Golden, UdpHeader) {
  net::UdpHeader udp;
  udp.src_port = 51000;
  udp.dst_port = net::kDtaUdpPort;  // 40050
  udp.length = 26;
  Bytes out;
  udp.encode(out);
  EXPECT_EQ(hex_of(out), "c738" "9c72" "001a" "0000");
}

TEST(Golden, WellKnownPorts) {
  EXPECT_EQ(net::kDtaUdpPort, 40050);
  EXPECT_EQ(net::kRoceUdpPort, 4791);  // IANA RoCEv2
}

TEST(Golden, CrcPolynomialCatalogueStable) {
  // The hash functions are part of the on-disk/wire contract: changing a
  // polynomial silently invalidates every stored slot index.
  EXPECT_EQ(common::kChecksumPoly, 0xEDB88320u);
  EXPECT_EQ(common::kValuePoly, 0x82F63B78u);
  EXPECT_EQ(common::kSlotPolys[0], 0xEB31D82Eu);
  EXPECT_EQ(common::kHopPolys[0], 0xAE689191u);
}

TEST(Golden, SlotIndexVector) {
  // Pin the full key->slot pipeline for one vector.
  const auto key = proto::TelemetryKey::from(ByteSpan(Bytes{1, 2, 3, 4}));
  EXPECT_EQ(translator::key_checksum(key), 0xB63CFBCDu);
}

}  // namespace
}  // namespace dta

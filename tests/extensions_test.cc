// Tests for the §7 / §4-extensibility features: the query-enhancing
// translator engine, the heavy-hitter sketch extension, multi-collector
// partitioning, and the SmartNIC translator variant.
#include <gtest/gtest.h>

#include "rdma/memory_region.h"
#include "translator/collector_selector.h"
#include "translator/heavy_hitter.h"
#include "translator/query_engine.h"
#include "translator/smartnic.h"

namespace dta::translator {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

proto::PostcardReport latency_card(std::uint64_t flow, std::uint8_t hop,
                                   std::uint32_t latency,
                                   std::uint8_t path_len = 3) {
  proto::PostcardReport r;
  r.key = key_of(flow);
  r.hop = hop;
  r.path_len = path_len;
  r.redundancy = 1;
  r.value = latency;
  return r;
}

// --------------------------------------------------------- QueryEngine

TEST(QueryEngine, SumOverThresholdMatches) {
  // SELECT flowID, path WHERE SUM(latency) > 100.
  QueryEngine engine({.threshold_sum = 100, .export_list = 3}, 1024);
  EXPECT_FALSE(engine.ingest(latency_card(1, 0, 50)).has_value());
  EXPECT_FALSE(engine.ingest(latency_card(1, 1, 40)).has_value());
  const auto match = engine.ingest(latency_card(1, 2, 30));  // sum=120
  ASSERT_TRUE(match);
  EXPECT_EQ(match->sum, 120u);
  EXPECT_EQ(match->per_hop, (std::vector<std::uint32_t>{50, 40, 30}));
  EXPECT_EQ(engine.stats().flows_matched, 1u);
}

TEST(QueryEngine, UnderThresholdSuppressed) {
  QueryEngine engine({.threshold_sum = 1000}, 1024);
  engine.ingest(latency_card(1, 0, 10));
  engine.ingest(latency_card(1, 1, 10));
  EXPECT_FALSE(engine.ingest(latency_card(1, 2, 10)).has_value());
  EXPECT_EQ(engine.stats().flows_suppressed, 1u);
  EXPECT_EQ(engine.stats().flows_matched, 0u);
}

TEST(QueryEngine, ExactThresholdNotMatched) {
  QueryEngine engine({.threshold_sum = 30}, 1024);
  engine.ingest(latency_card(1, 0, 10));
  engine.ingest(latency_card(1, 1, 10));
  EXPECT_FALSE(engine.ingest(latency_card(1, 2, 10)).has_value());  // == T
}

TEST(QueryEngine, RetransmittedHopReplacedNotDoubleCounted) {
  QueryEngine engine({.threshold_sum = 100}, 1024);
  engine.ingest(latency_card(1, 0, 60));
  engine.ingest(latency_card(1, 0, 20));  // retransmit, lower value
  engine.ingest(latency_card(1, 1, 20));
  const auto match = engine.ingest(latency_card(1, 2, 20));  // sum=60
  EXPECT_FALSE(match.has_value());
}

TEST(QueryEngine, CollisionEvictsBestEffort) {
  QueryEngine engine({.threshold_sum = 10}, 1);  // single row
  engine.ingest(latency_card(1, 0, 50));
  // Flow 2 evicts flow 1, whose partial sum (50) exceeds T: match.
  const auto match = engine.ingest(latency_card(2, 0, 5));
  ASSERT_TRUE(match);
  EXPECT_EQ(match->sum, 50u);
  EXPECT_EQ(engine.stats().early_evictions, 1u);
}

TEST(QueryEngine, FlushEvaluatesResidents) {
  QueryEngine engine({.threshold_sum = 10}, 1024);
  engine.ingest(latency_card(1, 0, 100, 5));  // incomplete, over T
  engine.ingest(latency_card(2, 0, 1, 5));    // incomplete, under T
  const auto matches = engine.flush();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].sum, 100u);
}

TEST(QueryEngine, MatchExportsAsAppendEntry) {
  ThresholdQuery q{.threshold_sum = 10, .export_list = 7};
  QueryEngine engine(q, 64);
  engine.ingest(latency_card(1, 0, 20));
  engine.ingest(latency_card(1, 1, 20));
  const auto match = engine.ingest(latency_card(1, 2, 20));
  ASSERT_TRUE(match);
  const auto append = match->to_append(q);
  EXPECT_EQ(append.list_id, 7u);
  ASSERT_EQ(append.entries.size(), 1u);
  // 16B key + 8B sum + 3 x 4B path.
  EXPECT_EQ(append.entries[0].size(), 36u);
  EXPECT_EQ(common::load_u64(append.entries[0].data() + 16), 60u);
}

TEST(QueryEngine, SuppressionCutsCollectorTraffic) {
  // The point of the extension: only matching flows reach the collector.
  QueryEngine engine({.threshold_sum = 250}, 4096);
  int exported = 0;
  for (std::uint64_t flow = 0; flow < 1000; ++flow) {
    // Flow i has per-hop latency i/10: only flows > ~833 cross 250 total.
    for (std::uint8_t hop = 0; hop < 3; ++hop) {
      if (engine.ingest(latency_card(flow, hop,
                                     static_cast<std::uint32_t>(flow / 10)))) {
        ++exported;
      }
    }
  }
  EXPECT_GT(exported, 100);
  EXPECT_LT(exported, 250);  // ~16% pass rate, 84% traffic suppressed
  EXPECT_EQ(engine.stats().flows_completed, 1000u);
}

// ------------------------------------------------------- HeavyHitterEngine

proto::KeyIncrementReport bump(std::uint64_t key, std::uint64_t count) {
  proto::KeyIncrementReport r;
  r.key = key_of(key);
  r.redundancy = 1;
  r.counter = count;
  return r;
}

TEST(HeavyHitter, EstimatesNeverUnderCount) {
  HeavyHitterEngine engine({.threshold = 1u << 30});
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 20; ++k) engine.update(bump(k, k + 1));
  }
  for (std::uint64_t k = 0; k < 20; ++k) {
    EXPECT_GE(engine.estimate(key_of(k)), 50 * (k + 1));
  }
}

TEST(HeavyHitter, ExportsCrossingKeysOnce) {
  HeavyHitterEngine engine({.threshold = 100, .export_list = 9});
  int exports = 0;
  for (int i = 0; i < 30; ++i) {
    const auto report = engine.update(bump(42, 10));
    if (report) {
      ++exports;
      EXPECT_EQ(report->list_id, 9u);
      // Entry: 16B key + 8B estimate.
      EXPECT_EQ(report->entries[0].size(), 24u);
      EXPECT_GT(common::load_u64(report->entries[0].data() + 16), 100u);
    }
  }
  EXPECT_EQ(exports, 1);  // latched after the first crossing
  EXPECT_EQ(engine.stats().hitters_exported, 1u);
}

TEST(HeavyHitter, LightKeysNeverExported) {
  HeavyHitterEngine engine({.threshold = 1000});
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(engine.update(bump(k, 1)).has_value());
  }
}

TEST(HeavyHitter, EpochFlushWritesSketchAndResets) {
  HeavyHitterConfig config;
  config.sketch_rows = 3;
  config.sketch_cols = 256;
  config.threshold = 50;
  config.mirror_base_va = 0x5000;
  config.mirror_rkey = 0x77;
  HeavyHitterEngine engine(config);
  engine.update(bump(1, 60));

  const auto writes = engine.flush_epoch();
  ASSERT_EQ(writes.size(), 3u);
  for (std::uint32_t row = 0; row < 3; ++row) {
    EXPECT_EQ(writes[row].remote_va, 0x5000 + row * 256 * 8);
    EXPECT_EQ(writes[row].payload.size(), 256u * 8);
  }
  // One row must contain the count 60 somewhere.
  bool found = false;
  for (std::size_t off = 0; off < writes[0].payload.size(); off += 8) {
    if (common::load_u64(writes[0].payload.data() + off) == 60) found = true;
  }
  EXPECT_TRUE(found);

  // Counters reset: the key can cross and be exported again.
  EXPECT_EQ(engine.estimate(key_of(1)), 0u);
  EXPECT_TRUE(engine.update(bump(1, 60)).has_value());
}

TEST(HeavyHitter, AggregationReducesCollectorLoad) {
  // 10K updates -> 3 RDMA writes per epoch instead of 10K fetch-adds.
  HeavyHitterConfig config;
  config.threshold = 1u << 30;
  HeavyHitterEngine engine(config);
  for (int i = 0; i < 10000; ++i) engine.update(bump(i % 100, 1));
  const auto writes = engine.flush_epoch();
  EXPECT_EQ(writes.size(), config.sketch_rows);
  EXPECT_EQ(engine.stats().updates_in, 10000u);
}

// ---------------------------------------------------- CollectorSelector

TEST(Selector, KeyHashIsDeterministicAndBalanced) {
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 4);
  std::vector<int> counts(4, 0);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    proto::KeyWriteReport r;
    r.key = key_of(k);
    const auto first = selector.route(r, 0);
    const auto second = selector.route(r, 99);  // dst ip must not matter
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first, second);
    counts[first[0]]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 2200);  // ~2500 each
    EXPECT_LT(c, 2800);
  }
}

TEST(Selector, AppendPartitionsByList) {
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 3);
  for (std::uint32_t list = 0; list < 9; ++list) {
    proto::AppendReport r;
    r.list_id = list;
    const auto route = selector.route(r, 0);
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(route[0], list % 3);
  }
}

TEST(Selector, ReplicateReachesAll) {
  CollectorSelector selector(PartitionPolicy::kReplicate, 3);
  proto::KeyWriteReport r;
  r.key = key_of(1);
  const auto route = selector.route(r, 0);
  EXPECT_EQ(route, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(selector.stats().replicated_copies, 2u);
}

TEST(Selector, DestinationIpPolicy) {
  CollectorSelector selector(PartitionPolicy::kByDestinationIp, 2);
  proto::KeyWriteReport r;
  r.key = key_of(1);
  EXPECT_EQ(selector.route(r, 10)[0], 0u);
  EXPECT_EQ(selector.route(r, 11)[0], 1u);
}

TEST(Selector, ShardingIndependentOfSlotHashes) {
  // The shard function must not correlate with slot placement: two keys
  // in the same shard should not systematically share slot indexes.
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 2);
  int same_slot = 0, same_shard = 0;
  for (std::uint64_t k = 0; k < 2000; k += 2) {
    proto::KeyWriteReport a, b;
    a.key = key_of(k);
    b.key = key_of(k + 1);
    if (selector.route(a, 0)[0] == selector.route(b, 0)[0]) {
      ++same_shard;
      if (slot_index(0, a.key, 4096) == slot_index(0, b.key, 4096)) {
        ++same_slot;
      }
    }
  }
  EXPECT_GT(same_shard, 300);
  EXPECT_LT(same_slot, 5);
}

// ----------------------------------------------------- SmartNicTranslator

class SmartNicTest : public ::testing::Test {
 protected:
  SmartNicTest() : nic_(&pd_) {
    mr_ = pd_.register_region(4096, rdma::kRemoteWrite | rdma::kRemoteAtomic);
  }
  rdma::ProtectionDomain pd_;
  rdma::MemoryRegion* mr_;
  SmartNicTranslator nic_;
};

TEST_F(SmartNicTest, DmaWriteLands) {
  RdmaOp op;
  op.kind = RdmaOp::Kind::kWrite;
  op.remote_va = mr_->base_va() + 16;
  op.rkey = mr_->rkey();
  op.payload = {0xAB, 0xCD};
  ASSERT_TRUE(nic_.apply(op));
  EXPECT_EQ(mr_->data()[16], 0xAB);
  EXPECT_EQ(nic_.stats().dma_writes, 1u);
}

TEST_F(SmartNicTest, FetchAddAccumulates) {
  RdmaOp op;
  op.kind = RdmaOp::Kind::kFetchAdd;
  op.remote_va = mr_->base_va();
  op.rkey = mr_->rkey();
  op.add_value = 21;
  ASSERT_TRUE(nic_.apply(op));
  ASSERT_TRUE(nic_.apply(op));
  EXPECT_EQ(common::load_u64(mr_->data()), 42u);
}

TEST_F(SmartNicTest, RejectsBadRkeyAndBounds) {
  RdmaOp bad_key;
  bad_key.kind = RdmaOp::Kind::kWrite;
  bad_key.rkey = 0xDEAD;
  bad_key.payload = {1};
  EXPECT_FALSE(nic_.apply(bad_key));

  RdmaOp oob;
  oob.kind = RdmaOp::Kind::kWrite;
  oob.rkey = mr_->rkey();
  oob.remote_va = mr_->base_va() + 4095;
  oob.payload = {1, 2, 3};
  EXPECT_FALSE(nic_.apply(oob));
  EXPECT_EQ(nic_.stats().rejected, 2u);
}

TEST_F(SmartNicTest, MisalignedAtomicRejected) {
  RdmaOp op;
  op.kind = RdmaOp::Kind::kFetchAdd;
  op.remote_va = mr_->base_va() + 4;
  op.rkey = mr_->rkey();
  EXPECT_FALSE(nic_.apply(op));
}

TEST_F(SmartNicTest, RoceOverheadQuantified) {
  RdmaOp write;
  write.kind = RdmaOp::Kind::kWrite;
  // Eth(14)+IP(20)+UDP(8)+BTH(12)+RETH(16)+ICRC(4) = 74.
  EXPECT_EQ(SmartNicTranslator::roce_overhead_bytes(write), 74u);

  RdmaOp atomic;
  atomic.kind = RdmaOp::Kind::kFetchAdd;
  // Request 86 + ACK 62 = 148.
  EXPECT_EQ(SmartNicTranslator::roce_overhead_bytes(atomic), 148u);
}

TEST_F(SmartNicTest, SameResultAsRoceTranslatorForWrites) {
  // The variant must be semantically interchangeable: the same RdmaOp
  // produces identical memory contents via DMA or via RoCE.
  RdmaOp op;
  op.kind = RdmaOp::Kind::kWrite;
  op.remote_va = mr_->base_va() + 64;
  op.rkey = mr_->rkey();
  op.payload = {9, 8, 7, 6, 5};
  ASSERT_TRUE(nic_.apply(op));
  EXPECT_EQ(Bytes(mr_->data() + 64, mr_->data() + 69), op.payload);
  EXPECT_EQ(nic_.stats().bytes_written, 5u);
}

}  // namespace
}  // namespace dta::translator

// Snapshot-cache tests: generation-stamped snapshot reuse between
// flushes, read-your-submits across cache hits, the quiesce (worker
// hold-barrier) protocol under concurrent ingest+query load — the TSan
// headline test: many query threads against one flushing shard, where
// no query may ever observe a torn or stale-beyond-one-generation
// snapshot — and the NUMA placement bookkeeping on the shard regions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "collector/runtime.h"
#include "dta/report_builders.h"
#include "rdma/memory_region.h"

namespace dta::collector {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

// An 8-byte value whose halves must agree — a torn snapshot (copy
// racing a store write) would surface as lo != hi.
proto::ParsedDta paired_report(std::uint64_t id, std::uint32_t round) {
  Bytes data;
  common::put_u32(data, round);
  common::put_u32(data, round);
  return reports::keywrite(key_of(id), ByteSpan(data), /*redundancy=*/2);
}

proto::ParsedDta small_report(std::uint64_t id, std::uint32_t value,
                              std::uint8_t redundancy = 1) {
  return reports::keywrite_u32(key_of(id), value, redundancy);
}

CollectorRuntimeConfig cache_config(ThreadMode mode,
                                    std::uint32_t value_bytes = 4,
                                    std::uint32_t op_batch = 4) {
  CollectorRuntimeConfig config;
  config.num_shards = 1;
  config.thread_mode = mode;
  config.op_batch_size = op_batch;
  KeyWriteSetup kw;
  kw.num_slots = 1 << 14;
  kw.value_bytes = value_bytes;
  config.keywrite = kw;
  return config;
}

// --------------------------------------------------------------- reuse

TEST(SnapshotCache, ServesCachedSnapshotBetweenChanges) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  for (std::uint64_t id = 0; id < 10; ++id) {
    runtime.submit(small_report(id, 100 + static_cast<std::uint32_t>(id)));
  }

  const auto s1 = runtime.snapshot_shard(0);
  const auto s2 = runtime.snapshot_shard(0);
  EXPECT_EQ(s1.get(), s2.get()) << "unchanged shard must share one copy";
  auto stats = runtime.snapshot_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);

  // New data invalidates: the next snapshot is a fresh, newer copy.
  runtime.submit(small_report(99, 7));
  const auto s3 = runtime.snapshot_shard(0);
  EXPECT_NE(s3.get(), s1.get());
  EXPECT_GT(s3->generation(), s1->generation());
  const auto result = s3->keywrite_query(key_of(99), 1);
  ASSERT_EQ(result.status, QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 7u);
  // The old snapshot is immutable: key 99 is invisible to it.
  EXPECT_NE(s1->keywrite_query(key_of(99), 1).status, QueryStatus::kHit);
}

TEST(SnapshotCache, GenerationCountsDeliveredBatches) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  EXPECT_EQ(runtime.shard(0).generation(), 0u);

  // op_batch_size = 4, redundancy 1: three reports stage three ops but
  // deliver nothing, so store memory — and the generation — are
  // untouched.
  for (std::uint64_t id = 0; id < 3; ++id) {
    runtime.submit(small_report(id, 1));
  }
  EXPECT_EQ(runtime.shard(0).generation(), 0u);

  runtime.submit(small_report(3, 1));  // fourth op: batch delivered
  EXPECT_EQ(runtime.shard(0).generation(), 1u);

  runtime.flush();  // nothing staged: no delivery, no bump
  EXPECT_EQ(runtime.shard(0).generation(), 1u);

  runtime.submit(small_report(4, 1));
  runtime.flush();  // partial batch forced out
  EXPECT_EQ(runtime.shard(0).generation(), 2u);
}

TEST(SnapshotCache, FreshCopyBypassesCache) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  runtime.submit(small_report(1, 5));
  const auto f1 = runtime.snapshot_shard_fresh(0);
  const auto f2 = runtime.snapshot_shard_fresh(0);
  EXPECT_NE(f1.get(), f2.get()) << "fresh copies are never shared";
  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(runtime.snapshot_cache().cached_count(), 0u);
  const auto result = f2->keywrite_query(key_of(1), 1);
  ASSERT_EQ(result.status, QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 5u);
}

TEST(SnapshotCache, InvalidationDropsEntries) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  runtime.submit(small_report(1, 5));
  const auto s1 = runtime.snapshot_shard(0);
  EXPECT_EQ(runtime.snapshot_cache().cached_count(), 1u);

  runtime.invalidate_snapshots();
  EXPECT_EQ(runtime.snapshot_cache().cached_count(), 0u);
  EXPECT_EQ(runtime.snapshot_cache().stats().invalidations, 1u);

  // Next acquisition re-copies even though the generation is unchanged.
  const auto s2 = runtime.snapshot_shard(0);
  EXPECT_NE(s2.get(), s1.get());
  EXPECT_EQ(s2->generation(), s1->generation());
  EXPECT_EQ(runtime.snapshot_cache().stats().misses, 2u);
}

TEST(SnapshotCache, ReadYourSubmitsAcrossCacheHits) {
  // A report that is submitted but not yet committed to an op batch
  // must still invalidate the cache: generation compare alone would
  // serve the stale snapshot (the batch hasn't delivered), covers_seq
  // is what catches it.
  CollectorRuntime runtime(
      cache_config(ThreadMode::kThreaded, 4, /*op_batch=*/64));
  runtime.submit(small_report(1, 11));
  const auto s1 = runtime.snapshot_shard(0);
  ASSERT_EQ(s1->keywrite_query(key_of(1), 1).status, QueryStatus::kHit);

  runtime.submit(small_report(2, 22));  // stays staged: batch of 64
  const auto s2 = runtime.snapshot_shard(0);
  EXPECT_NE(s2.get(), s1.get());
  const auto result = s2->keywrite_query(key_of(2), 1);
  ASSERT_EQ(result.status, QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 22u);
  runtime.stop();
}

// ------------------------------------------------- concurrent stress

TEST(SnapshotCache, ConcurrentQueriesSeeFreshUntornSnapshots) {
  // The TSan headline: query threads acquire snapshots nonstop while
  // the control thread keeps writing and flushing one shard. Asserted
  // per observation:
  //   * torn-freedom — every 8-byte value has matching halves (a copy
  //     racing an ingest write would tear them);
  //   * freshness — a snapshot acquired after round R was published
  //     contains values >= R for every key (never stale beyond the
  //     generation the control thread pinned);
  //   * monotonicity — each thread's observed generations never go
  //     backwards.
  static constexpr std::uint32_t kKeys = 32;
  static constexpr std::uint32_t kRounds = 30;
  constexpr unsigned kQueryThreads = 3;

  CollectorRuntime runtime(
      cache_config(ThreadMode::kThreaded, /*value_bytes=*/8, /*op_batch=*/8));
  std::atomic<std::uint32_t> published_round{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&runtime, &published_round, &done] {
      std::uint64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint32_t floor = published_round.load();
        const auto snap = runtime.snapshot_shard(0);
        EXPECT_GE(snap->generation(), last_generation);
        last_generation = snap->generation();
        for (std::uint64_t id = 0; id < kKeys; id += 5) {
          const auto result = snap->keywrite_query(key_of(id), 2);
          if (floor >= 1) {
            EXPECT_EQ(result.status, QueryStatus::kHit) << "key " << id;
          }
          if (result.status != QueryStatus::kHit) continue;
          const std::uint32_t lo = common::load_u32(result.value.data());
          const std::uint32_t hi = common::load_u32(result.value.data() + 4);
          EXPECT_EQ(lo, hi) << "torn value for key " << id;
          EXPECT_GE(lo, floor) << "stale snapshot served for key " << id;
          EXPECT_LE(lo, kRounds);
        }
      }
    });
  }

  for (std::uint32_t round = 1; round <= kRounds; ++round) {
    for (std::uint64_t id = 0; id < kKeys; ++id) {
      runtime.submit(paired_report(id, round));
    }
    // Pin the round into the cache (quiesce + copy) before announcing
    // it: every snapshot acquired after the announcement includes it.
    const auto snap = runtime.snapshot_shard(0);
    EXPECT_GE(snap->generation(), round > 1 ? 1u : 0u);
    published_round.store(round);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  // Reuse must actually have happened, and must still work now that
  // the shard is idle.
  const auto a = runtime.snapshot_shard(0);
  const auto b = runtime.snapshot_shard(0);
  EXPECT_EQ(a.get(), b.get());
  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, kRounds);
  runtime.stop();
}

TEST(SnapshotCache, StopRacingSnapshotAcquisitionIsSafe) {
  // stop() may land while another thread is inside snapshot_shard: the
  // worker must not exit with an unanswered quiesce (hang) or run its
  // final flush during a copy (tear). Loop a few races; TSan watches.
  for (int iteration = 0; iteration < 5; ++iteration) {
    CollectorRuntime runtime(
        cache_config(ThreadMode::kThreaded, /*value_bytes=*/8, /*op_batch=*/4));
    for (std::uint64_t id = 0; id < 16; ++id) {
      runtime.submit(paired_report(id, 1));
    }
    std::atomic<bool> done{false};
    std::thread reader([&runtime, &done] {
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = runtime.snapshot_shard(0);
        const auto result = snap->keywrite_query(key_of(3), 2);
        if (result.status == QueryStatus::kHit) {
          EXPECT_EQ(common::load_u32(result.value.data()),
                    common::load_u32(result.value.data() + 4));
        }
      }
    });
    std::this_thread::yield();
    runtime.stop();  // races the reader's acquisitions
    done.store(true, std::memory_order_release);
    reader.join();

    // The stopped pipeline still snapshots (single-threaded fallback).
    const auto snap = runtime.snapshot_shard(0);
    EXPECT_EQ(snap->keywrite_query(key_of(3), 2).status, QueryStatus::kHit);
  }
}

// ------------------------------------------- incremental refresh (PR 4)

// Byte-for-byte equality of two snapshots' copied regions.
void expect_snapshots_identical(const StoreSnapshot& a,
                                const StoreSnapshot& b) {
  const auto compare = [](const rdma::MemoryRegion* x,
                          const rdma::MemoryRegion* y, const char* what) {
    ASSERT_EQ(x == nullptr, y == nullptr) << what;
    if (!x) return;
    ASSERT_EQ(x->length(), y->length()) << what;
    EXPECT_EQ(std::memcmp(x->data(), y->data(), x->length()), 0)
        << what << " memory diverged";
  };
  EXPECT_EQ(a.generation(), b.generation());
  compare(a.keywrite_mem(), b.keywrite_mem(), "keywrite");
  compare(a.postcarding_mem(), b.postcarding_mem(), "postcarding");
  compare(a.append_mem(), b.append_mem(), "append");
  compare(a.keyincrement_mem(), b.keyincrement_mem(), "keyincrement");
}

TEST(SnapshotCache, IncrementalRefreshMatchesFullCopy) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  for (std::uint32_t round = 1; round <= 8; ++round) {
    for (std::uint64_t id = round; id < round + 6; ++id) {
      runtime.submit(small_report(id, round));
    }
    runtime.flush();
    const auto cached = runtime.snapshot_shard(0);
    const auto reference = runtime.snapshot_shard_fresh(0);
    expect_snapshots_identical(*cached, *reference);
  }
  const auto stats = runtime.snapshot_cache().stats();
  // First build is a full copy; every later round only patched chunks.
  EXPECT_EQ(stats.full_refreshes, 1u);
  EXPECT_EQ(stats.incremental_refreshes, 7u);
}

TEST(SnapshotCache, IncrementalRefreshCopiesOnlyDirtiedBytes) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.snapshot_chunk_bytes = 4096;
  CollectorRuntime runtime(config);
  const std::uint64_t store_bytes =
      runtime.shard(0).service().keywrite_region()->length();

  for (std::uint64_t id = 0; id < 200; ++id) {
    runtime.submit(small_report(id, 1));
  }
  (void)runtime.snapshot_shard(0);  // full first build
  const std::uint64_t after_build =
      runtime.snapshot_cache().stats().quiesce_bytes_copied;
  EXPECT_GE(after_build, store_bytes);

  // One report dirties one chunk: the next refresh must quiesce-copy a
  // tiny fraction of the store, not all of it.
  runtime.submit(small_report(7777, 2));
  runtime.flush();
  (void)runtime.snapshot_shard(0);
  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_EQ(stats.incremental_refreshes, 1u);
  const std::uint64_t patched = stats.quiesce_bytes_copied - after_build;
  EXPECT_GT(patched, 0u);
  EXPECT_LE(patched, store_bytes / 4) << "patch should be chunk-sized";
}

TEST(SnapshotCache, PinnedReaderForcesCopyOnWrite) {
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  runtime.submit(small_report(1, 10));
  auto pinned = runtime.snapshot_shard(0);

  // The pinned snapshot must stay frozen: the refresh clones instead of
  // patching in place.
  runtime.submit(small_report(2, 20));
  auto fresh = runtime.snapshot_shard(0);
  EXPECT_NE(fresh.get(), pinned.get());
  EXPECT_EQ(runtime.snapshot_cache().stats().cow_clones, 1u);
  EXPECT_NE(pinned->keywrite_query(key_of(2), 1).status, QueryStatus::kHit);
  ASSERT_EQ(fresh->keywrite_query(key_of(2), 1).status, QueryStatus::kHit);

  // With no handle outstanding the next refresh patches the published
  // snapshot in place — same object, new contents.
  const StoreSnapshot* recycled = fresh.get();
  pinned.reset();
  fresh.reset();
  runtime.submit(small_report(3, 30));
  const auto in_place = runtime.snapshot_shard(0);
  EXPECT_EQ(in_place.get(), recycled);
  EXPECT_EQ(runtime.snapshot_cache().stats().cow_clones, 1u);
  ASSERT_EQ(in_place->keywrite_query(key_of(3), 1).status, QueryStatus::kHit);
}

TEST(SnapshotCache, HighDirtyRatioFallsBackToFullCopy) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  KeyWriteSetup kw;
  kw.num_slots = 1 << 10;  // tiny store: a burst dirties most chunks
  kw.value_bytes = 4;
  config.keywrite = kw;
  config.snapshot_chunk_bytes = 64;
  config.snapshot_full_copy_ratio = 0.25;
  CollectorRuntime runtime(config);
  runtime.submit(small_report(0, 1));
  (void)runtime.snapshot_shard(0);  // first build

  for (std::uint64_t id = 0; id < 1000; ++id) {
    runtime.submit(small_report(id, 2));
  }
  runtime.flush();
  const auto snap = runtime.snapshot_shard(0);
  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_EQ(stats.incremental_refreshes, 0u);
  EXPECT_EQ(stats.full_refreshes, 2u);
  expect_snapshots_identical(*snap, *runtime.snapshot_shard_fresh(0));
}

TEST(SnapshotCache, IncrementalDisabledAlwaysFullCopies) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.incremental_snapshots = false;
  CollectorRuntime runtime(config);
  for (std::uint32_t round = 1; round <= 3; ++round) {
    runtime.submit(small_report(round, round));
    (void)runtime.snapshot_shard(0);
  }
  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_EQ(stats.incremental_refreshes, 0u);
  EXPECT_EQ(stats.full_refreshes, 3u);
  EXPECT_EQ(stats.cow_clones, 0u);
}

// --------------------------------------------- bounded staleness (PR 4)

TEST(SnapshotCache, WithinBudgetServesWithoutQuiesce) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.staleness_budget.generations = 100;
  CollectorRuntime runtime(config);
  runtime.submit(small_report(1, 1));
  const auto base = runtime.snapshot_shard_bounded(0);  // miss: first build
  const std::uint64_t quiesces_after_build = runtime.pipeline().quiesces(0);
  EXPECT_GE(quiesces_after_build, 1u);

  // The store changes; a bounded acquisition within budget serves the
  // stale snapshot without opening a quiesce window or refreshing.
  runtime.submit(small_report(2, 2));
  runtime.flush();
  const std::uint64_t quiesces_before = runtime.pipeline().quiesces(0);
  const auto stale = runtime.snapshot_shard_bounded(0);
  EXPECT_EQ(stale.get(), base.get()) << "budget must reuse the cached copy";
  EXPECT_EQ(runtime.pipeline().quiesces(0), quiesces_before)
      << "a within-budget serve must not quiesce";
  EXPECT_GE(runtime.snapshot_cache().stats().stale_hits, 1u);
  EXPECT_LT(stale->generation(), runtime.shard(0).generation());

  // The exact-freshness path still refreshes.
  const auto fresh = runtime.snapshot_shard(0);
  EXPECT_GT(runtime.pipeline().quiesces(0), quiesces_before);
  EXPECT_EQ(fresh->generation(), runtime.shard(0).generation());
}

TEST(SnapshotCache, ExpiredGenerationBudgetRefreshes) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.staleness_budget.generations = 2;
  // op_batch 4 (cache_config): each flushed report = one generation.
  CollectorRuntime runtime(config);
  runtime.submit(small_report(0, 1));
  runtime.flush();
  const auto base = runtime.snapshot_shard_bounded(0);

  // Lag 2 generations: still within budget.
  for (std::uint64_t id = 1; id <= 2; ++id) {
    runtime.submit(small_report(id, 1));
    runtime.flush();
  }
  EXPECT_EQ(runtime.snapshot_shard_bounded(0).get(), base.get());

  // A third generation exceeds the budget: the cache must refresh.
  runtime.submit(small_report(3, 1));
  runtime.flush();
  const std::uint64_t quiesces_before = runtime.pipeline().quiesces(0);
  const auto refreshed = runtime.snapshot_shard_bounded(0);
  EXPECT_NE(refreshed.get(), base.get());
  EXPECT_EQ(refreshed->generation(), runtime.shard(0).generation());
  EXPECT_GT(runtime.pipeline().quiesces(0), quiesces_before);
}

TEST(SnapshotCache, AgeBudgetExpires) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.staleness_budget.age_us = 600ull * 1000 * 1000;  // 10 min
  CollectorRuntime runtime(config);
  runtime.submit(small_report(1, 1));
  const auto base = runtime.snapshot_shard_bounded(0);

  // Any generation lag is fine while the snapshot is young.
  runtime.submit(small_report(2, 2));
  runtime.flush();
  EXPECT_EQ(runtime.snapshot_shard_bounded(0).get(), base.get());

  // Shrink the budget below the snapshot's age: it must refresh.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SnapshotStalenessBudget tight;
  tight.age_us = 1;
  runtime.set_staleness_budget(tight);
  const auto refreshed = runtime.snapshot_shard_bounded(0);
  EXPECT_NE(refreshed.get(), base.get());
  EXPECT_EQ(refreshed->generation(), runtime.shard(0).generation());
}

TEST(SnapshotCache, CoversSeqFloorOverridesBudget) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kInline);
  config.staleness_budget.generations = 100;
  CollectorRuntime runtime(config);
  runtime.submit(small_report(1, 11));
  const auto base = runtime.snapshot_shard_bounded(0);

  runtime.submit(small_report(2, 22));
  // Without a floor the budget serves the stale copy (key 2 invisible)…
  const auto stale = runtime.snapshot_shard_bounded(0);
  EXPECT_EQ(stale.get(), base.get());
  EXPECT_NE(stale->keywrite_query(key_of(2), 1).status, QueryStatus::kHit);

  // …but a read-your-submits floor forces a covering refresh.
  const auto covering =
      runtime.snapshot_shard_bounded(0, runtime.pipeline().submitted(0));
  EXPECT_NE(covering.get(), base.get());
  const auto result = covering->keywrite_query(key_of(2), 1);
  ASSERT_EQ(result.status, QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 22u);
}

TEST(SnapshotCache, StaleServingQueriesDuringIngest) {
  // TSan stress for the bounded path: readers spin on
  // snapshot_shard_bounded — mostly riding stale cached snapshots, so
  // almost never quiescing — while the control thread keeps writing and
  // pinning fresh generations. Asserts torn-freedom and per-thread
  // generation monotonicity; TSan watches the rest.
  static constexpr std::uint32_t kKeys = 32;
  static constexpr std::uint32_t kRounds = 20;
  constexpr unsigned kQueryThreads = 3;

  CollectorRuntimeConfig config =
      cache_config(ThreadMode::kThreaded, /*value_bytes=*/8, /*op_batch=*/8);
  config.staleness_budget.generations = 4;
  CollectorRuntime runtime(config);
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&runtime, &done] {
      std::uint64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = runtime.snapshot_shard_bounded(0);
        EXPECT_GE(snap->generation(), last_generation);
        last_generation = snap->generation();
        for (std::uint64_t id = 0; id < kKeys; id += 7) {
          const auto result = snap->keywrite_query(key_of(id), 2);
          if (result.status != QueryStatus::kHit) continue;
          const std::uint32_t lo = common::load_u32(result.value.data());
          const std::uint32_t hi = common::load_u32(result.value.data() + 4);
          EXPECT_EQ(lo, hi) << "torn value for key " << id;
          EXPECT_LE(lo, kRounds);
        }
      }
    });
  }

  for (std::uint32_t round = 1; round <= kRounds; ++round) {
    for (std::uint64_t id = 0; id < kKeys; ++id) {
      runtime.submit(paired_report(id, round));
    }
    // Pin each round through the exact path so refreshes (and their
    // in-place/COW decisions) interleave with the stale serves.
    (void)runtime.snapshot_shard(0);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  const auto stats = runtime.snapshot_cache().stats();
  EXPECT_GE(stats.misses, kRounds);
  runtime.stop();
}

// ------------------------------------------------------ NUMA placement

// ------------------------------------------------------------ zero-copy

TEST(SnapshotCache, ZeroCopyViewsStableAcrossRefreshes) {
  // The zero-copy serving contract: a query-view span into a pinned
  // snapshot stays byte-stable forever, because the cache never patches
  // a pinned snapshot in place — refreshes divert to a COW clone.
  CollectorRuntime runtime(cache_config(ThreadMode::kInline));
  for (std::uint64_t id = 0; id < 16; ++id) {
    runtime.submit(small_report(id, 100 + static_cast<std::uint32_t>(id)));
  }

  const auto pinned = runtime.snapshot_shard(0);
  const auto view = pinned->keywrite_query_view(key_of(3), 1);
  ASSERT_EQ(view.status, QueryStatus::kHit);
  ASSERT_EQ(view.value.size(), 4u);
  EXPECT_EQ(common::load_u32(view.value.data()), 103u);

  // Overwrite the very key the view points at, across several refresh
  // cycles, while the original snapshot stays pinned.
  for (std::uint32_t round = 0; round < 5; ++round) {
    runtime.submit(small_report(3, 1000 + round));
    const auto fresh = runtime.snapshot_shard(0);
    const auto fresh_view = fresh->keywrite_query_view(key_of(3), 1);
    ASSERT_EQ(fresh_view.status, QueryStatus::kHit);
    EXPECT_EQ(common::load_u32(fresh_view.value.data()), 1000 + round);
    // The held view is untouched by every refresh.
    EXPECT_EQ(common::load_u32(view.value.data()), 103u)
        << "pinned view mutated in round " << round;
  }
  EXPECT_GE(runtime.snapshot_cache().stats().cow_clones, 1u)
      << "refreshes over a pinned snapshot must clone, not patch";
}

TEST(SnapshotCache, ZeroCopyAppendViewsShareSnapshotMemory) {
  auto config = cache_config(ThreadMode::kInline);
  AppendSetup ap;
  ap.num_lists = 2;
  ap.entries_per_list = 64;
  ap.entry_bytes = 4;
  config.append = ap;
  CollectorRuntime runtime(config);
  for (std::uint32_t i = 0; i < 16; ++i) {
    runtime.submit(reports::append_u32(0, 500 + i));
  }

  const auto snap = runtime.snapshot_shard(0);
  const auto views = snap->append_read_views(0, 8);
  ASSERT_EQ(views.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(common::load_u32(views[i].data()), 500 + i);
    // Genuinely zero-copy: the spans point into the snapshot's region.
    const auto* mem = snap->append_mem();
    EXPECT_GE(views[i].data(), mem->data());
    EXPECT_LT(views[i].data(), mem->data() + mem->length());
  }
  // Like append_read, the view walk consumes the snapshot's private
  // tail: the next call picks up exactly where this one stopped, and
  // the earlier spans stay valid (the ring memory is immutable).
  const auto rest = snap->append_read_views(0, 8);
  ASSERT_EQ(rest.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(common::load_u32(rest[i].data()), 508 + i);
  }
  EXPECT_EQ(common::load_u32(views[0].data()), 500u);
}

TEST(SnapshotCache, ConcurrentZeroCopyViewsUnderIngest) {
  // TSan coverage for the view lifetime rule: reader threads hold
  // query-view spans across ingest + refresh cycles and re-validate
  // their bytes; the control thread keeps mutating the same keys. Any
  // in-place patch of a pinned snapshot is a data race TSan flags and
  // a value mismatch this test catches.
  static constexpr std::uint32_t kKeys = 16;
  static constexpr std::uint32_t kRounds = 25;
  constexpr unsigned kReaders = 2;

  CollectorRuntime runtime(
      cache_config(ThreadMode::kThreaded, /*value_bytes=*/8, /*op_batch=*/8));
  for (std::uint64_t id = 0; id < kKeys; ++id) {
    runtime.submit(paired_report(id, 1));
  }
  (void)runtime.snapshot_shard(0);
  std::atomic<bool> done{false};

  struct HeldView {
    std::shared_ptr<const StoreSnapshot> snap;
    ByteSpan value;
    std::uint32_t observed = 0;
  };

  std::vector<std::thread> readers;
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&runtime, &done] {
      std::vector<HeldView> held;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = runtime.snapshot_shard(0);
        for (std::uint64_t id = 0; id < kKeys; id += 3) {
          const auto view = snap->keywrite_query_view(key_of(id), 2);
          if (view.status != QueryStatus::kHit) continue;
          HeldView h;
          h.snap = snap;
          h.value = view.value;
          h.observed = common::load_u32(view.value.data());
          held.push_back(std::move(h));
        }
        // Every retained view — possibly several refreshes old — must
        // still read exactly what it read at acquisition time.
        for (const auto& h : held) {
          EXPECT_EQ(common::load_u32(h.value.data()), h.observed);
          EXPECT_EQ(common::load_u32(h.value.data() + 4), h.observed);
        }
        if (held.size() > 24) held.erase(held.begin(), held.begin() + 12);
      }
    });
  }

  for (std::uint32_t round = 2; round <= kRounds; ++round) {
    for (std::uint64_t id = 0; id < kKeys; ++id) {
      runtime.submit(paired_report(id, round));
    }
    (void)runtime.snapshot_shard(0);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  runtime.stop();
}

TEST(SnapshotCache, NumaPlacementBookkeeping) {
  CollectorRuntimeConfig config = cache_config(ThreadMode::kThreaded);
  config.num_shards = 2;
  config.pin_workers = true;
  config.worker_cores = {0, 0};  // core 0 always exists
  CollectorRuntime runtime(config);
  for (std::uint64_t id = 0; id < 50; ++id) {
    runtime.submit(small_report(id, 1));
  }
  runtime.flush();  // workers past their first-touch pass

  // One Key-Write region per shard: each is placed by the allocation-
  // time mbind or by its pinned worker's first-touch pass (which itself
  // migrates via mbind where available) — regions already bound at
  // allocation are skipped, so at most one touch per region.
  EXPECT_LE(runtime.pipeline().regions_first_touched(), 2u);
  for (std::uint32_t s = 0; s < 2; ++s) {
    const auto* region = runtime.shard(s).service().keywrite_region();
    EXPECT_TRUE(region->node_bound() ||
                runtime.pipeline().regions_first_touched() > 0)
        << "shard " << s << " region placed by neither path";
  }

  const int node = rdma::numa_node_of_core(0);
#if defined(__linux__)
  EXPECT_GE(rdma::numa_node_count(), 1);
  EXPECT_GE(node, 0) << "sysfs topology should map core 0";
#endif
  if (node >= 0) {
    for (std::uint32_t s = 0; s < 2; ++s) {
      // Allocation-time hint recorded on the domain...
      EXPECT_EQ(runtime.shard(s).service().nic().pd().node_hint(), node);
      // ...and placement recorded on the region (hint, or first-touch
      // from the worker pinned to the same core).
      if (runtime.pipeline().stats().workers_pinned == 2) {
        EXPECT_EQ(runtime.shard(s).service().keywrite_region()->numa_node(),
                  node);
      }
    }
  }
  runtime.stop();
}

TEST(SnapshotCache, NoFirstTouchWithoutPinning) {
  CollectorRuntime runtime(cache_config(ThreadMode::kThreaded));
  runtime.submit(small_report(1, 1));
  runtime.flush();
  EXPECT_EQ(runtime.pipeline().regions_first_touched(), 0u);
  EXPECT_EQ(runtime.shard(0).service().keywrite_region()->numa_node(), -1);
  runtime.stop();
}

}  // namespace
}  // namespace dta::collector

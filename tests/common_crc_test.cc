#include "common/crc.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dta::common {
namespace {

ByteSpan span_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, KnownVectorIeee) {
  // The canonical check value: CRC-32("123456789") = 0xCBF43926.
  Crc32 crc(kChecksumPoly);
  EXPECT_EQ(crc.compute(span_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, KnownVectorCastagnoli) {
  // CRC-32C("123456789") = 0xE3069283.
  Crc32 crc(kValuePoly);
  EXPECT_EQ(crc.compute(span_of("123456789")), 0xE3069283u);
}

TEST(Crc32, EmptyInputIsZero) {
  Crc32 crc(kChecksumPoly);
  EXPECT_EQ(crc.compute({}), 0u);  // init ^ xor_out with no data
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Crc32 crc(kChecksumPoly);
  const std::string msg = "direct telemetry access";
  std::uint32_t state = crc.begin();
  state = crc.update(state, span_of(msg.substr(0, 7)));
  state = crc.update(state, span_of(msg.substr(7)));
  EXPECT_EQ(crc.finish(state), crc.compute(span_of(msg)));
}

TEST(Crc32, DifferentPolynomialsDiffer) {
  const std::string msg = "flow-key-0001";
  std::set<std::uint32_t> hashes;
  for (unsigned i = 0; i < kSlotPolys.size(); ++i) {
    hashes.insert(slot_crc(i).compute(span_of(msg)));
  }
  // All 8 slot hash functions must produce distinct values for a
  // representative key (they act as independent hash functions).
  EXPECT_EQ(hashes.size(), kSlotPolys.size());
}

TEST(Crc32, HopChecksumsIndependent) {
  const std::string key = "some-5-tuple!";
  std::set<std::uint32_t> hashes;
  for (unsigned hop = 0; hop < 8; ++hop) {
    hashes.insert(hop_crc(hop).compute(span_of(key)));
  }
  EXPECT_EQ(hashes.size(), 8u);
}

TEST(Crc32, SingleBitChangesHash) {
  Crc32 crc(kChecksumPoly);
  Bytes a(16, 0);
  Bytes b = a;
  b[7] ^= 0x01;
  EXPECT_NE(crc.compute(ByteSpan(a)), crc.compute(ByteSpan(b)));
}

TEST(Crc32, SlotHashesLookUniform) {
  // Bucket 10K sequential keys into 16 buckets per hash function and
  // check no bucket deviates more than 30% from the mean — a coarse
  // uniformity guard for the slot-index functions.
  constexpr int kKeys = 10000;
  constexpr int kBuckets = 16;
  for (unsigned fn = 0; fn < 4; ++fn) {
    int counts[kBuckets] = {};
    for (int i = 0; i < kKeys; ++i) {
      Bytes key;
      put_u32(key, static_cast<std::uint32_t>(i));
      counts[slot_crc(fn).compute(ByteSpan(key)) % kBuckets]++;
    }
    for (int c : counts) {
      EXPECT_GT(c, kKeys / kBuckets * 0.7) << "hash fn " << fn;
      EXPECT_LT(c, kKeys / kBuckets * 1.3) << "hash fn " << fn;
    }
  }
}

TEST(Crc32, SharedEnginesAreStable) {
  Bytes key = {1, 2, 3};
  const std::uint32_t first = checksum_crc().compute(ByteSpan(key));
  EXPECT_EQ(checksum_crc().compute(ByteSpan(key)), first);
}

}  // namespace
}  // namespace dta::common

#include "common/crc.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

namespace dta::common {
namespace {

ByteSpan span_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, KnownVectorIeee) {
  // The canonical check value: CRC-32("123456789") = 0xCBF43926.
  Crc32 crc(kChecksumPoly);
  EXPECT_EQ(crc.compute(span_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, KnownVectorCastagnoli) {
  // CRC-32C("123456789") = 0xE3069283.
  Crc32 crc(kValuePoly);
  EXPECT_EQ(crc.compute(span_of("123456789")), 0xE3069283u);
}

TEST(Crc32, EmptyInputIsZero) {
  Crc32 crc(kChecksumPoly);
  EXPECT_EQ(crc.compute({}), 0u);  // init ^ xor_out with no data
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Crc32 crc(kChecksumPoly);
  const std::string msg = "direct telemetry access";
  std::uint32_t state = crc.begin();
  state = crc.update(state, span_of(msg.substr(0, 7)));
  state = crc.update(state, span_of(msg.substr(7)));
  EXPECT_EQ(crc.finish(state), crc.compute(span_of(msg)));
}

TEST(Crc32, DifferentPolynomialsDiffer) {
  const std::string msg = "flow-key-0001";
  std::set<std::uint32_t> hashes;
  for (unsigned i = 0; i < kSlotPolys.size(); ++i) {
    hashes.insert(slot_crc(i).compute(span_of(msg)));
  }
  // All 8 slot hash functions must produce distinct values for a
  // representative key (they act as independent hash functions).
  EXPECT_EQ(hashes.size(), kSlotPolys.size());
}

TEST(Crc32, HopChecksumsIndependent) {
  const std::string key = "some-5-tuple!";
  std::set<std::uint32_t> hashes;
  for (unsigned hop = 0; hop < 8; ++hop) {
    hashes.insert(hop_crc(hop).compute(span_of(key)));
  }
  EXPECT_EQ(hashes.size(), 8u);
}

TEST(Crc32, SingleBitChangesHash) {
  Crc32 crc(kChecksumPoly);
  Bytes a(16, 0);
  Bytes b = a;
  b[7] ^= 0x01;
  EXPECT_NE(crc.compute(ByteSpan(a)), crc.compute(ByteSpan(b)));
}

TEST(Crc32, SlotHashesLookUniform) {
  // Bucket 10K sequential keys into 16 buckets per hash function and
  // check no bucket deviates more than 30% from the mean — a coarse
  // uniformity guard for the slot-index functions.
  constexpr int kKeys = 10000;
  constexpr int kBuckets = 16;
  for (unsigned fn = 0; fn < 4; ++fn) {
    int counts[kBuckets] = {};
    for (int i = 0; i < kKeys; ++i) {
      Bytes key;
      put_u32(key, static_cast<std::uint32_t>(i));
      counts[slot_crc(fn).compute(ByteSpan(key)) % kBuckets]++;
    }
    for (int c : counts) {
      EXPECT_GT(c, kKeys / kBuckets * 0.7) << "hash fn " << fn;
      EXPECT_LT(c, kKeys / kBuckets * 1.3) << "hash fn " << fn;
    }
  }
}

TEST(Crc32, SharedEnginesAreStable) {
  Bytes key = {1, 2, 3};
  const std::uint32_t first = checksum_crc().compute(ByteSpan(key));
  EXPECT_EQ(checksum_crc().compute(ByteSpan(key)), first);
}

// -- Equivalence fuzzing: the slice-by-8 and hardware fast paths must be
// byte-identical to the byte-at-a-time reference for every catalogue
// polynomial, across random lengths, alignments and split points. ------

std::vector<const Crc32*> catalogue_engines() {
  std::vector<const Crc32*> engines = {&checksum_crc(), &value_crc(),
                                       &shard_crc()};
  for (unsigned i = 0; i < kSlotPolys.size(); ++i) engines.push_back(&slot_crc(i));
  for (unsigned i = 0; i < kHopPolys.size(); ++i) engines.push_back(&hop_crc(i));
  return engines;
}

std::uint32_t reference_compute(const Crc32& crc, ByteSpan data) {
  return crc.finish(crc.update_bytewise(crc.begin(), data));
}

TEST(Crc32, SlicedAndHwMatchReferenceFuzz) {
  std::mt19937 rng(0xDA7A0701u);
  // A shared pool bigger than any message, so sub-spans at random
  // offsets exercise every alignment of the 8-byte folding loop.
  Bytes pool(8192);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng());
  const auto engines = catalogue_engines();
  std::uniform_int_distribution<std::size_t> len_dist(0, 1500);
  std::uniform_int_distribution<std::size_t> off_dist(0, 63);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t len = len_dist(rng);
    const std::size_t off = off_dist(rng);
    const ByteSpan msg(pool.data() + off, len);
    const auto& crc = *engines[iter % engines.size()];
    EXPECT_EQ(crc.compute(msg), reference_compute(crc, msg))
        << "poly=0x" << std::hex << crc.polynomial() << " len=" << std::dec
        << len << " off=" << off;
  }
}

TEST(Crc32, IncrementalSplitPointsMatchFuzz) {
  std::mt19937 rng(0xDA7A0702u);
  Bytes pool(4096);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng());
  const auto engines = catalogue_engines();
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = rng() % 1024;
    const ByteSpan msg(pool.data() + (rng() % 16), len);
    const auto& crc = *engines[iter % engines.size()];
    // Feed the message through update() in random-sized chunks: every
    // split point must land on the same digest as one-shot compute().
    std::uint32_t state = crc.begin();
    std::size_t pos = 0;
    while (pos < len) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng() % 33, len - pos);
      state = crc.update(state, msg.subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(crc.finish(state), crc.compute(msg))
        << "poly=0x" << std::hex << crc.polynomial();
  }
}

TEST(Crc32, HardwareDispatchOnlyForValuePoly) {
  EXPECT_FALSE(checksum_crc().hardware_accelerated());
  EXPECT_FALSE(shard_crc().hardware_accelerated());
#if defined(DTA_DISABLE_HW_CRC)
  EXPECT_FALSE(value_crc().hardware_accelerated());
  EXPECT_FALSE(cpu_has_hw_crc32c());
#else
  EXPECT_EQ(value_crc().hardware_accelerated(), cpu_has_hw_crc32c());
#endif
}

TEST(Crc32, BatchMatchesPerMessage) {
  std::mt19937 rng(0xDA7A0703u);
  Bytes pool(65536);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng());
  for (const Crc32* crc : catalogue_engines()) {
    // Deliberately ragged batch sizes (including < 4, the interleave
    // width) and ragged message lengths.
    for (std::size_t count : {0u, 1u, 3u, 4u, 5u, 16u, 33u}) {
      std::vector<ByteSpan> msgs;
      for (std::size_t i = 0; i < count; ++i) {
        msgs.emplace_back(pool.data() + rng() % 128, rng() % 777);
      }
      std::vector<std::uint32_t> batched(count, 0);
      crc->compute_batch(msgs.data(), count, batched.data());
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(batched[i], crc->compute(msgs[i]))
            << "poly=0x" << std::hex << crc->polynomial() << " i=" << std::dec
            << i << "/" << count;
      }
    }
  }
}

TEST(Crc32, MultiEngineMatchesPerEngine) {
  std::mt19937 rng(0xDA7A0704u);
  Bytes pool(4096);
  for (auto& b : pool) b = static_cast<std::uint8_t>(rng());
  const auto engines = catalogue_engines();
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t count = 1 + rng() % engines.size();
    const ByteSpan msg(pool.data() + rng() % 32, rng() % 512);
    std::vector<std::uint32_t> multi(count, 0);
    Crc32::compute_multi(engines.data(), count, msg, multi.data());
    for (std::size_t e = 0; e < count; ++e) {
      ASSERT_EQ(multi[e], engines[e]->compute(msg));
    }
  }
}

TEST(Crc32, ShardOfBatchMatchesShardOf) {
  std::mt19937 rng(0xDA7A0705u);
  std::vector<Bytes> keys;
  std::vector<ByteSpan> spans;
  for (int i = 0; i < 100; ++i) {
    Bytes key(1 + rng() % 40);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    keys.push_back(std::move(key));
  }
  for (const auto& k : keys) spans.emplace_back(k.data(), k.size());
  for (std::uint32_t shards : {1u, 2u, 7u, 16u}) {
    std::vector<std::uint32_t> out(spans.size(), 1234567u);
    shard_of_batch(spans.data(), spans.size(), shards, out.data());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      ASSERT_EQ(out[i], shard_of(spans[i], shards));
    }
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(Crc32DeathTest, OutOfRangeReplicaAborts) {
  // The `< 8` contract is enforced, not silently wrapped: index 8 must
  // not alias engine 0.
  EXPECT_DEATH(slot_crc(8), "range|contract");
  EXPECT_DEATH(hop_crc(9), "range|contract");
}
#endif

}  // namespace
}  // namespace dta::common

#include <gtest/gtest.h>

#include "baseline/btrdb.h"
#include "baseline/cuckoo.h"
#include "baseline/ingest.h"
#include "baseline/intcollector.h"
#include "baseline/multilog.h"
#include "perfmodel/cache_model.h"

namespace dta::baseline {
namespace {

IntReport report_of(std::uint32_t i, std::uint32_t value,
                    std::uint64_t ts = 0) {
  IntReport r;
  r.ts_ns = ts ? ts : i * 1000ull;
  r.flow = {0x0A000000 + i, 0x0B000000 + i,
            static_cast<std::uint16_t>(1000 + i % 60000),
            static_cast<std::uint16_t>(80), 6};
  r.value = value;
  return r;
}

// ------------------------------------------------------------- serialization

TEST(IngestFormat, SerializeParseRoundTrip) {
  perfmodel::MemCounter mc;
  const IntReport r = report_of(7, 0xFEED, 123456789);
  const IntReport back = parse_report(common::ByteSpan(serialize_report(r)), mc);
  EXPECT_EQ(back.ts_ns, r.ts_ns);
  EXPECT_EQ(back.flow, r.flow);
  EXPECT_EQ(back.value, r.value);
  EXPECT_GT(mc.phase(perfmodel::Phase::kParse).total(), 0u);
}

// -------------------------------------------------------- shared behaviours

template <typename Backend>
class BackendTest : public ::testing::Test {
 protected:
  Backend backend_;
  perfmodel::MemCounter mc_;
};

using Backends =
    ::testing::Types<MultiLogCollector, CuckooCollector, IntCollectorSim,
                     BtrDbSim>;
TYPED_TEST_SUITE(BackendTest, Backends);

TYPED_TEST(BackendTest, InsertThenLookup) {
  this->backend_.insert(report_of(1, 42), this->mc_);
  std::uint32_t value = 0;
  ASSERT_TRUE(this->backend_.lookup(report_of(1, 0).flow, &value));
  EXPECT_EQ(value, 42u);
}

TYPED_TEST(BackendTest, MissingFlowNotFound) {
  this->backend_.insert(report_of(1, 42), this->mc_);
  std::uint32_t value = 0;
  EXPECT_FALSE(this->backend_.lookup(report_of(999, 0).flow, &value));
}

TYPED_TEST(BackendTest, LatestValueVisible) {
  this->backend_.insert(report_of(1, 10), this->mc_);
  this->backend_.insert(report_of(1, 20), this->mc_);
  std::uint32_t value = 0;
  ASSERT_TRUE(this->backend_.lookup(report_of(1, 0).flow, &value));
  EXPECT_EQ(value, 20u);
}

TYPED_TEST(BackendTest, ManyFlowsRetrievable) {
  for (std::uint32_t i = 0; i < 2000; ++i) {
    this->backend_.insert(report_of(i, i + 7), this->mc_);
  }
  int hits = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    std::uint32_t value = 0;
    if (this->backend_.lookup(report_of(i, 0).flow, &value) &&
        value == i + 7) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 2000);
}

TYPED_TEST(BackendTest, InsertionCountsMemoryAccesses) {
  this->backend_.insert(report_of(1, 1), this->mc_);
  EXPECT_GT(this->mc_.phase(perfmodel::Phase::kInsert).total(), 0u);
}

TYPED_TEST(BackendTest, MemoryFootprintReported) {
  // Dynamic structures grow; the Cuckoo table is pre-allocated (its
  // footprint is its capacity), so the contract is only non-decreasing.
  const std::size_t before = this->backend_.memory_bytes();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    this->backend_.insert(report_of(i, i), this->mc_);
  }
  EXPECT_GE(this->backend_.memory_bytes(), before);
  EXPECT_GT(this->backend_.memory_bytes(), 0u);
}

// ------------------------------------------------------- MultiLog specifics

TEST(MultiLog, TimeRangeQuery) {
  MultiLogCollector ml;
  perfmodel::MemCounter mc;
  for (std::uint32_t i = 0; i < 100; ++i) {
    ml.insert(report_of(i, i, (i + 1) * 1000000ull), mc);  // 1ms apart
  }
  // Records 10..19 fall in [11ms, 21ms).
  const auto hits = ml.query_time_range(11000000, 21000000);
  EXPECT_EQ(hits.size(), 10u);
  for (const auto off : hits) {
    EXPECT_GE(ml.record(off).ts_ns, 11000000u);
    EXPECT_LT(ml.record(off).ts_ns, 21000000u);
  }
}

TEST(MultiLog, SrcIpAttributeQuery) {
  MultiLogCollector ml;
  perfmodel::MemCounter mc;
  for (std::uint32_t i = 0; i < 50; ++i) ml.insert(report_of(i % 5, i), mc);
  EXPECT_EQ(ml.query_src_ip(0x0A000002).size(), 10u);
}

TEST(MultiLog, InsertionDominatesCycles) {
  // Figure 2c: ~72.8% of MultiLog cycles are insertion.
  MultiLogCollector ml;
  const auto packets = make_packets(20000, 5000);
  const IngestResult result = run_ingest(ml, packets);
  const perfmodel::CacheModel model;
  const auto est = model.estimate(result.counters, result.reports);
  const double insert_frac = est.insert_cycles / est.cycles_per_report;
  EXPECT_GT(insert_frac, 0.55);
  EXPECT_LT(insert_frac, 0.9);
}

// --------------------------------------------------------- Cuckoo specifics

TEST(Cuckoo, HandlesCollisionsViaEviction) {
  CuckooCollector cuckoo(8);  // tiny table: 256 buckets x 4 slots
  perfmodel::MemCounter mc;
  for (std::uint32_t i = 0; i < 700; ++i) {  // ~68% load
    cuckoo.insert(report_of(i, i), mc);
  }
  int hits = 0;
  for (std::uint32_t i = 0; i < 700; ++i) {
    std::uint32_t v;
    if (cuckoo.lookup(report_of(i, 0).flow, &v) && v == i) ++hits;
  }
  EXPECT_GE(hits + static_cast<int>(cuckoo.failed_inserts()), 700);
  EXPECT_GT(hits, 650);
}

TEST(Cuckoo, FewerAccessesThanMultiLog) {
  // The §2 trade-off: Cuckoo is much lighter per report than MultiLog.
  CuckooCollector cuckoo;
  MultiLogCollector ml;
  const auto packets = make_packets(5000, 2000);
  const auto rc = run_ingest(cuckoo, packets);
  const auto rm = run_ingest(ml, packets);
  EXPECT_LT(rc.counters.total() * 3, rm.counters.total());
}

TEST(Cuckoo, ProbesAreRandomDramAccesses) {
  // The §2 observation that makes Cuckoo memory-bound: every report
  // costs several random (table-sized working set) probes — far more
  // random traffic per report than MultiLog's compact indexes.
  CuckooCollector cuckoo;
  MultiLogCollector ml;
  const auto packets = make_packets(5000, 5000);
  const auto rc = run_ingest(cuckoo, packets);
  const auto rm = run_ingest(ml, packets);
  const double rand_per_report =
      static_cast<double>(rc.counters.total_random()) / rc.reports;
  EXPECT_GE(rand_per_report, 2.0);  // at least both bucket fetches
  EXPECT_LE(rand_per_report, 8.0);
  EXPECT_GT(rand_per_report,
            static_cast<double>(rm.counters.total_random()) / rm.reports);
}

// ---------------------------------------------------------- BTrDB specifics

TEST(BtrDb, SealsBlocksAndAggregates) {
  BtrDbSim db(64);
  perfmodel::MemCounter mc;
  const net::FiveTuple flow = report_of(1, 0).flow;
  for (std::uint32_t i = 0; i < 200; ++i) {
    IntReport r = report_of(1, i, (i + 1) * 100);
    db.insert(r, mc);
  }
  EXPECT_EQ(db.sealed_blocks(), 3u);  // 200/64 = 3 full leaves

  const auto agg = db.query_window(flow, 0, 100000);
  EXPECT_EQ(agg.count, 200u);
  EXPECT_EQ(agg.v_min, 0u);
  EXPECT_EQ(agg.v_max, 199u);
}

TEST(BtrDb, WindowQueryPartialOverlap) {
  BtrDbSim db(32);
  perfmodel::MemCounter mc;
  const net::FiveTuple flow = report_of(2, 0).flow;
  for (std::uint32_t i = 0; i < 100; ++i) {
    db.insert(report_of(2, i, (i + 1) * 10), mc);
  }
  // [155, 405) covers values 15..39 (ts = (i+1)*10).
  const auto agg = db.query_window(flow, 155, 405);
  EXPECT_EQ(agg.count, 25u);
  EXPECT_EQ(agg.v_min, 15u);
  EXPECT_EQ(agg.v_max, 39u);
}

// ------------------------------------------------------- Figure 2 dynamics

TEST(Fig2Dynamics, MultiLogScalesCuckooSaturates) {
  MultiLogCollector ml;
  CuckooCollector cuckoo;
  const auto packets = make_packets(20000, 100000);
  const auto rm = run_ingest(ml, packets);
  const auto rc = run_ingest(cuckoo, packets);

  const perfmodel::CacheModel model;
  // MultiLog: throughput keeps growing through 20 cores (CPU-bound).
  const auto ml8 = model.scale(rm.counters, rm.reports, 8);
  const auto ml20 = model.scale(rm.counters, rm.reports, 20);
  EXPECT_GT(ml20.reports_per_sec, ml8.reports_per_sec * 2.0);

  // Cuckoo: saturates between 11 and 20 cores (memory-bound).
  const auto ck11 = model.scale(rc.counters, rc.reports, 11);
  const auto ck20 = model.scale(rc.counters, rc.reports, 20);
  EXPECT_LT(ck20.reports_per_sec, ck11.reports_per_sec * 1.5);

  // Cuckoo's stall fraction grows with cores and exceeds MultiLog's.
  EXPECT_GT(ck20.stall_fraction, ck11.stall_fraction * 0.99);
  EXPECT_GT(ck20.stall_fraction, ml20.stall_fraction);

  // Cuckoo is faster per core at low core counts.
  const auto ml2 = model.scale(rm.counters, rm.reports, 2);
  const auto ck2 = model.scale(rc.counters, rc.reports, 2);
  EXPECT_GT(ck2.reports_per_sec, ml2.reports_per_sec);
}

}  // namespace
}  // namespace dta::baseline

// Tests for multi-collector deployments (§7), the INT-MD embedded-mode
// protocol walk, and PFC lossless transport (§7).
#include <gtest/gtest.h>

#include "dtalib/multi_fabric.h"
#include "net/pfc.h"
#include "telemetry/int_md.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

MultiFabricConfig multi_config(std::uint32_t collectors,
                               translator::PartitionPolicy policy) {
  MultiFabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 14;
  kw.value_bytes = 4;
  config.base.keywrite = kw;
  collector::AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 256;
  ap.entry_bytes = 4;
  config.base.append = ap;
  config.base.translator.append_batch_size = 1;
  config.num_collectors = collectors;
  config.policy = policy;
  return config;
}

// ------------------------------------------------------------ MultiFabric

TEST(MultiFabric, ShardedKeysLandOnTheirCollector) {
  MultiFabric mf(
      multi_config(3, translator::PartitionPolicy::kByKeyHash));
  for (std::uint64_t k = 0; k < 300; ++k) {
    proto::KeyWriteReport r;
    r.key = key_of(k);
    r.redundancy = 2;
    common::put_u32(r.data, static_cast<std::uint32_t>(k));
    mf.report(r);
  }
  int hits = 0;
  for (std::uint64_t k = 0; k < 300; ++k) {
    proto::KeyWriteReport probe;
    probe.key = key_of(k);
    const std::uint32_t shard = mf.shard_of(probe);
    const auto result =
        mf.collector(shard).service().keywrite()->query(key_of(k), 2);
    if (result.status == collector::QueryStatus::kHit &&
        common::load_u32(result.value.data()) == k) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 300);
}

TEST(MultiFabric, ShardsActuallySpread) {
  MultiFabric mf(multi_config(4, translator::PartitionPolicy::kByKeyHash));
  for (std::uint64_t k = 0; k < 400; ++k) {
    proto::KeyWriteReport r;
    r.key = key_of(k);
    r.redundancy = 1;
    common::put_u32(r.data, 1);
    mf.report(r);
  }
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_GT(mf.collector(c).stats().verbs_executed, 50u) << "shard " << c;
  }
}

TEST(MultiFabric, ReplicationSurvivesCollectorFailure) {
  MultiFabric mf(multi_config(2, translator::PartitionPolicy::kReplicate));
  // Collector 0 dies mid-run.
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (k == 50) mf.fail_collector(0);
    proto::KeyWriteReport r;
    r.key = key_of(k);
    r.redundancy = 2;
    common::put_u32(r.data, static_cast<std::uint32_t>(k));
    mf.report(r);
  }
  // Every key is answerable from the surviving collector.
  int hits = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto result =
        mf.collector(1).service().keywrite()->query(key_of(k), 2);
    if (result.status == collector::QueryStatus::kHit) ++hits;
  }
  EXPECT_EQ(hits, 100);
  // The dead collector only has the first half.
  int dead_hits = 0;
  for (std::uint64_t k = 50; k < 100; ++k) {
    if (mf.collector(0).service().keywrite()->query(key_of(k), 2).status ==
        collector::QueryStatus::kHit) {
      ++dead_hits;
    }
  }
  EXPECT_EQ(dead_hits, 0);
}

TEST(MultiFabric, AppendListsPartitionWhole) {
  MultiFabric mf(multi_config(2, translator::PartitionPolicy::kByKeyHash));
  for (std::uint32_t i = 0; i < 20; ++i) {
    proto::AppendReport r;
    r.list_id = 3;  // odd list -> collector 1
    r.entry_size = 4;
    Bytes e;
    common::put_u32(e, i);
    r.entries.push_back(std::move(e));
    mf.report(r);
  }
  EXPECT_EQ(mf.collector(1).stats().verbs_executed, 20u);
  EXPECT_EQ(mf.collector(0).stats().verbs_executed, 0u);
  auto* store = mf.collector(1).service().append();
  EXPECT_EQ(common::load_u32(store->poll(3).data()), 0u);
}

TEST(MultiFabric, AggregateRateScalesWithCollectors) {
  MultiFabric two(multi_config(2, translator::PartitionPolicy::kByKeyHash));
  MultiFabric four(multi_config(4, translator::PartitionPolicy::kByKeyHash));
  EXPECT_DOUBLE_EQ(four.aggregate_message_rate(),
                   2 * two.aggregate_message_rate());
  four.fail_collector(0);
  EXPECT_LT(four.aggregate_message_rate(),
            2 * two.aggregate_message_rate());
}

// ----------------------------------------------------------------- INT-MD

TEST(IntMd, HeaderRoundTrip) {
  telemetry::IntMdState state;
  state.header.remaining_hops = 3;
  state.header.instructions = telemetry::kSwitchId | telemetry::kHopLatency;
  state.stack = {7, 8, 9};
  const auto decoded = telemetry::IntMdState::decode(ByteSpan(state.encode()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.remaining_hops, 3);
  EXPECT_EQ(decoded->header.instructions, state.header.instructions);
  EXPECT_EQ(decoded->stack, state.stack);
}

TEST(IntMd, TransitPushesNewestFirst) {
  telemetry::IntMdState state;
  state.header.remaining_hops = 5;
  EXPECT_TRUE(telemetry::int_md_transit(state, 100));
  EXPECT_TRUE(telemetry::int_md_transit(state, 200));
  EXPECT_EQ(state.stack, (std::vector<std::uint32_t>{200, 100}));
  EXPECT_EQ(state.header.remaining_hops, 3);
}

TEST(IntMd, HopBudgetSuppressesExtraHops) {
  const std::vector<std::uint32_t> path = {1, 2, 3, 4, 5, 6, 7};
  const auto run = telemetry::int_md_traverse({}, path, /*budget=*/5);
  EXPECT_EQ(run.hops_recorded, 5);
  EXPECT_EQ(run.hops_suppressed, 2);
  EXPECT_EQ(run.report.switch_ids,
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
}

TEST(IntMd, SinkRestoresPathOrder) {
  const std::vector<std::uint32_t> path = {10, 20, 30};
  const auto run = telemetry::int_md_traverse({}, path);
  EXPECT_EQ(run.report.switch_ids, path);
}

TEST(IntMd, EmbeddedBytesGrowPerHop) {
  const auto short_run = telemetry::int_md_traverse({}, {1, 2});
  const auto long_run = telemetry::int_md_traverse({}, {1, 2, 3, 4, 5});
  // 12B header + 4B per recorded hop.
  EXPECT_EQ(short_run.max_embedded_bytes, 12u + 2 * 4);
  EXPECT_EQ(long_run.max_embedded_bytes, 12u + 5 * 4);
}

TEST(IntMd, SinkReportFeedsKeyWrite) {
  // The INT-MD sink's report is exactly the Fig. 10 20B KW payload.
  net::FiveTuple flow{1, 2, 3, 4, 6};
  const auto run = telemetry::int_md_traverse(flow, {11, 22, 33, 44, 55});
  const auto kw = run.report.to_dta(2);
  EXPECT_EQ(kw.data.size(), 20u);
  EXPECT_EQ(common::load_u32(kw.data.data()), 11u);
  EXPECT_EQ(common::load_u32(kw.data.data() + 16), 55u);
}

// -------------------------------------------------------------------- PFC

TEST(Pfc, PausesAboveXoffResumesBelowXon) {
  net::PfcParams params;
  params.capacity_bytes = 1000;
  params.xoff_bytes = 600;
  params.xon_bytes = 200;
  net::PfcQueue queue(params);

  // 100B packets: pause after the 6th.
  int sent = 0;
  while (queue.can_send() && sent < 20) {
    ASSERT_TRUE(queue.enqueue(net::Packet(Bytes(100, 0))));
    ++sent;
  }
  EXPECT_EQ(sent, 6);
  EXPECT_TRUE(queue.paused());
  EXPECT_EQ(queue.counters().pause_frames, 1u);

  // Drain until XON.
  while (queue.paused()) queue.dequeue();
  EXPECT_LE(queue.occupancy_bytes(), 200u);
  EXPECT_EQ(queue.counters().resume_frames, 1u);
  EXPECT_TRUE(queue.can_send());
}

TEST(Pfc, NoLossWhenSenderHonorsPause) {
  net::PfcParams params;
  params.capacity_bytes = 2000;
  params.xoff_bytes = 1200;
  params.xon_bytes = 400;
  net::PfcQueue queue(params);

  // Offered load 2x drain rate for 10K frames; the sender defers while
  // paused. Everything must eventually be delivered, nothing dropped.
  std::uint64_t offered = 0, delivered = 0;
  std::uint64_t backlog = 10000;
  while (delivered < 10000) {
    for (int burst = 0; burst < 2 && backlog > 0; ++burst) {
      if (queue.can_send()) {
        ASSERT_TRUE(queue.enqueue(net::Packet(Bytes(100, 0))));
        --backlog;
        ++offered;
      }
    }
    if (queue.dequeue()) ++delivered;
  }
  EXPECT_EQ(queue.counters().dropped_overflow, 0u);
  EXPECT_EQ(delivered, 10000u);
  EXPECT_GT(queue.counters().pause_frames, 0u);
}

TEST(Pfc, OverflowOnlyWithoutHeadroom) {
  net::PfcParams params;
  params.capacity_bytes = 300;
  params.xoff_bytes = 280;  // mis-sized: no headroom for in-flight
  params.xon_bytes = 100;
  net::PfcQueue queue(params);
  for (int i = 0; i < 4; ++i) queue.enqueue(net::Packet(Bytes(100, 0)));
  EXPECT_GT(queue.counters().dropped_overflow, 0u);
}

TEST(Pfc, LosslessDtaTransport) {
  // §7's claim end-to-end: DTA over a PFC-protected hop delivers every
  // report despite a slow translator, where the plain lossy link would
  // have dropped.
  net::PfcQueue queue;
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 14;
  config.keywrite = kw;
  Fabric fabric(config);

  // Producer: 5000 reports into the PFC queue (honoring pause).
  std::uint64_t produced = 0, consumed = 0;
  const std::uint64_t total = 5000;
  while (consumed < total) {
    if (produced < total && queue.can_send()) {
      proto::KeyWriteReport r;
      r.key = key_of(produced);
      r.redundancy = 1;
      common::put_u32(r.data, static_cast<std::uint32_t>(produced));
      net::Packet frame = fabric.reporter(0).make_frame(r);
      ASSERT_TRUE(queue.enqueue(std::move(frame)));
      ++produced;
    }
    // Slow consumer: the translator drains one frame per iteration.
    if (auto frame = queue.dequeue()) {
      fabric.translator().ingest(std::move(*frame), 0);
      ++consumed;
    }
  }
  EXPECT_EQ(queue.counters().dropped_overflow, 0u);
  EXPECT_EQ(fabric.collector().stats().verbs_executed, total);
}

}  // namespace
}  // namespace dta

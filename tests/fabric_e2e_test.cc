// End-to-end tests through the full fabric: reporter UDP encapsulation,
// 100G link, translator parse + translate, RoCE link, NIC verb
// execution, and collector-side queries — the complete Figure 1 data
// flow, including loss and reordering behaviour.
#include <gtest/gtest.h>

#include "dtalib/fabric.h"
#include "telemetry/records.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint32_t id) {
  Bytes b;
  common::put_u32(b, id);
  return TelemetryKey::from(ByteSpan(b));
}

FabricConfig full_config() {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  kw.value_bytes = 4;
  config.keywrite = kw;

  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 1024; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;

  collector::AppendSetup ap;
  ap.num_lists = 8;
  ap.entries_per_list = 1024;
  ap.entry_bytes = 4;
  config.append = ap;

  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;

  config.translator.append_batch_size = 4;
  return config;
}

TEST(FabricE2E, KeyWriteThroughFullStack) {
  Fabric fabric(full_config());
  proto::KeyWriteReport r;
  r.key = key_of(1);
  r.redundancy = 2;
  common::put_u32(r.data, 0xABCD);
  fabric.report(r);

  auto result =
      fabric.collector().service().keywrite()->query(key_of(1), 2);
  ASSERT_EQ(result.status, collector::QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 0xABCDu);
  EXPECT_EQ(fabric.translator().stats().dta_reports_in, 1u);
  EXPECT_EQ(fabric.translator().stats().rdma_frames_out, 2u);  // N=2
  EXPECT_EQ(fabric.collector().stats().verbs_executed, 2u);
}

TEST(FabricE2E, PostcardingThroughFullStack) {
  Fabric fabric(full_config());
  for (std::uint8_t hop = 0; hop < 5; ++hop) {
    proto::PostcardReport r;
    r.key = key_of(7);
    r.hop = hop;
    r.path_len = 5;
    r.redundancy = 1;
    r.value = 100 + hop;
    fabric.report(r);
  }
  auto result =
      fabric.collector().service().postcarding()->query(key_of(7), 1);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.hop_values,
            (std::vector<std::uint32_t>{100, 101, 102, 103, 104}));
}

TEST(FabricE2E, AppendThroughFullStack) {
  Fabric fabric(full_config());
  for (std::uint32_t i = 0; i < 8; ++i) {
    proto::AppendReport r;
    r.list_id = 3;
    r.entry_size = 4;
    Bytes e;
    common::put_u32(e, i);
    r.entries.push_back(std::move(e));
    fabric.report(r);
  }
  auto* store = fabric.collector().service().append();
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(common::load_u32(store->poll(3).data()), i);
  }
}

TEST(FabricE2E, KeyIncrementThroughFullStack) {
  Fabric fabric(full_config());
  for (int i = 0; i < 5; ++i) {
    proto::KeyIncrementReport r;
    r.key = key_of(11);
    r.redundancy = 2;
    r.counter = 3;
    fabric.report(r);
  }
  EXPECT_EQ(fabric.collector().service().keyincrement()->query(key_of(11), 2),
            15u);
}

TEST(FabricE2E, MixedPrimitivesInterleaved) {
  Fabric fabric(full_config());
  for (std::uint32_t i = 0; i < 50; ++i) {
    proto::KeyWriteReport kw;
    kw.key = key_of(i);
    kw.redundancy = 1;
    common::put_u32(kw.data, i);
    fabric.report(kw);

    proto::KeyIncrementReport ki;
    ki.key = key_of(i);
    ki.redundancy = 2;
    ki.counter = 1;
    fabric.report(ki);

    proto::AppendReport ap;
    ap.list_id = 0;
    ap.entry_size = 4;
    Bytes e;
    common::put_u32(e, i);
    ap.entries.push_back(std::move(e));
    fabric.report(ap);
  }
  int kw_hits = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto r = fabric.collector().service().keywrite()->query(key_of(i), 1);
    if (r.status == collector::QueryStatus::kHit) ++kw_hits;
  }
  EXPECT_GE(kw_hits, 49);
  EXPECT_EQ(fabric.collector().service().keyincrement()->query(key_of(7), 2),
            1u);
}

TEST(FabricE2E, TelemetryRecordIntegration) {
  // Table 2 integration sanity: Marple/NetSeer records flow through
  // their designated primitives.
  Fabric fabric(full_config());

  telemetry::MarpleTcpTimeout timeout;
  timeout.flow = {0x0A000001, 0x0A000002, 1234, 80, 6};
  timeout.timeouts = 3;
  fabric.report(timeout.to_dta(2));

  const auto kb = timeout.flow.to_bytes();
  auto key = TelemetryKey::from(ByteSpan(kb.data(), kb.size()));
  auto result = fabric.collector().service().keywrite()->query(key, 2);
  ASSERT_EQ(result.status, collector::QueryStatus::kHit);
  EXPECT_EQ(common::load_u32(result.value.data()), 3u);
}

TEST(FabricE2E, ReportLossDegradesGracefully) {
  FabricConfig config = full_config();
  config.reporter_link.loss_rate = 0.3;
  config.reporter_link.seed = 5;
  Fabric fabric(config);

  for (std::uint32_t i = 0; i < 200; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 2;
    common::put_u32(r.data, i);
    fabric.report(r);
  }
  int hits = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    auto r = fabric.collector().service().keywrite()->query(key_of(i), 2);
    if (r.status == collector::QueryStatus::kHit) {
      EXPECT_EQ(common::load_u32(r.value.data()), i);  // never wrong
      ++hits;
    }
  }
  // ~70% delivery: the primitives still work, with missing reports
  // simply absent (the paper's "degraded probabilistic guarantees").
  EXPECT_GT(hits, 100);
  EXPECT_LT(hits, 180);
}

TEST(FabricE2E, RdmaLinkLossTriggersPsnResyncAndRecovers) {
  FabricConfig config = full_config();
  config.rdma_link.loss_rate = 0.1;
  config.rdma_link.seed = 9;
  Fabric fabric(config);

  for (std::uint32_t i = 0; i < 300; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 1;
    common::put_u32(r.data, i);
    fabric.report(r);
  }
  // Lost RoCE frames create PSN gaps; the collector NAKs and the
  // translator resynchronizes, so later writes keep landing.
  EXPECT_GT(fabric.translator().crafter().resyncs(), 0u);
  int hits = 0;
  for (std::uint32_t i = 250; i < 300; ++i) {
    auto r = fabric.collector().service().keywrite()->query(key_of(i), 1);
    if (r.status == collector::QueryStatus::kHit) ++hits;
  }
  EXPECT_GT(hits, 30);  // the tail of the stream still mostly landed
}

TEST(FabricE2E, RateLimiterDropsAndNacks) {
  FabricConfig config = full_config();
  config.translator.rate_limiting_enabled = true;
  config.translator.rate_limiter.ops_per_second = 1;  // absurdly slow
  config.translator.rate_limiter.burst = 4;
  Fabric fabric(config);

  for (std::uint32_t i = 0; i < 50; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 1;
    common::put_u32(r.data, i);
    fabric.report(r);
  }
  EXPECT_GT(fabric.translator().stats().rate_limited_drops, 0u);
  EXPECT_GT(fabric.translator().stats().nacks_sent, 0u);
  EXPECT_LT(fabric.collector().stats().verbs_executed, 50u);

  // The fabric routes the wire NACK back to the reporter, which
  // surfaces it as a typed, client-visible backpressure Status with the
  // translator's retry-after hint attached.
  EXPECT_GT(fabric.reporter(0).stats().nacks_received, 0u);
  auto status = fabric.reporter(0).take_backpressure();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kResourceExhausted);
  EXPECT_GT(status->retry_after_ns(), 0u);
}

TEST(FabricE2E, ImmediateFlagRaisesCollectorEvent) {
  Fabric fabric(full_config());
  proto::KeyWriteReport r;
  r.key = key_of(1);
  r.redundancy = 1;
  common::put_u32(r.data, 42);
  fabric.report(r, 0, /*immediate=*/true);

  auto event = fabric.collector().poll_event();
  ASSERT_TRUE(event);
  EXPECT_TRUE(event->immediate.has_value());
}

TEST(FabricE2E, UserTrafficForwardedNotTranslated) {
  Fabric fabric(full_config());
  int forwarded = 0;
  fabric.translator().set_forward_sink([&](net::Packet&&) { ++forwarded; });

  const Bytes payload = {1, 2, 3};
  net::Packet user(net::build_udp_frame({}, {}, 0x0A000001, 0x0A000099, 5555,
                                        8080, ByteSpan(payload)));
  fabric.translator().ingest(std::move(user), 0);
  EXPECT_EQ(forwarded, 1);
  EXPECT_EQ(fabric.translator().stats().user_frames_forwarded, 1u);
  EXPECT_EQ(fabric.translator().stats().dta_reports_in, 0u);
}

TEST(FabricE2E, MalformedDtaDropped) {
  Fabric fabric(full_config());
  const Bytes junk = {0x09, 0xFF, 0x00};
  net::Packet bad(net::build_udp_frame({}, {}, 1, 2, 5555, net::kDtaUdpPort,
                                       ByteSpan(junk)));
  fabric.translator().ingest(std::move(bad), 0);
  EXPECT_EQ(fabric.translator().stats().malformed_dropped, 1u);
}

TEST(FabricE2E, FlushDrainsAggregators) {
  Fabric fabric(full_config());
  // Two postcards of a 5-hop path + 1 append entry (batch 4): both stuck
  // in translator state until flush.
  for (std::uint8_t hop = 0; hop < 2; ++hop) {
    proto::PostcardReport r;
    r.key = key_of(70);
    r.hop = hop;
    r.path_len = 5;
    r.redundancy = 1;
    r.value = hop;
    fabric.report(r);
  }
  proto::AppendReport ap;
  ap.list_id = 0;
  ap.entry_size = 4;
  ap.entries.push_back(Bytes{1, 2, 3, 4});
  fabric.report(ap);

  const auto before = fabric.collector().stats().verbs_executed;
  EXPECT_EQ(before, 0u);
  fabric.flush();
  EXPECT_EQ(fabric.collector().stats().verbs_executed, 2u);
}

TEST(FabricE2E, ModeledRateReflectsNicCeiling) {
  FabricConfig config = full_config();
  config.nic.base_message_rate = 10e6;
  Fabric fabric(config);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 1;
    common::put_u32(r.data, i);
    fabric.report(r);
  }
  // All verbs arrive essentially at t=0 (fabric clock does not advance
  // between reports), so the NIC's modeled rate converges to its ceiling.
  EXPECT_NEAR(fabric.modeled_verbs_per_sec(), 10e6, 0.5e6);
}

}  // namespace
}  // namespace dta

// Robustness and fidelity of the .dtatrace format (telemetry/
// report_trace.h): lossless round-trips, typed errors — never crashes
// or asserts — on every truncation point, corrupt header field and
// payload bit flip (this suite runs under ASan and UBSan in CI), and
// the committed golden fixtures replaying deterministically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dta/report_builders.h"
#include "telemetry/report_trace.h"
#include "tests/backend_fixtures.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using telemetry::decode_trace;
using telemetry::ReportTraceWriter;
using telemetry::TraceRecord;

// A small, varied trace: all four primitives, three tenants, mixed
// immediate flags and dst_ips.
ReportTraceWriter sample_writer(std::uint32_t count = 24) {
  const auto workload = testing::conformance_workload(count);
  ReportTraceWriter writer;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    TraceRecord record;
    record.timestamp_ns = i + 1;
    record.tenant = static_cast<TenantId>(i % 3);
    record.dst_ip = (i % 2) ? 0x0A000001u : 0;
    record.immediate = (i % 5) == 0;
    record.parsed = workload[i];
    record.parsed.header.tenant = record.tenant;
    record.parsed.header.immediate = record.immediate;
    writer.add(std::move(record));
  }
  return writer;
}

bool is_typed_decode_error(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kOutOfRange;
}

TEST(ReplayTraceTest, RoundTripPreservesEveryRecord) {
  const ReportTraceWriter writer = sample_writer();
  const Bytes image = writer.serialize();
  ASSERT_GE(image.size(), telemetry::kTraceHeaderBytes);

  const auto decoded = decode_trace(ByteSpan(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), writer.records().size());
  for (std::size_t i = 0; i < decoded.value().size(); ++i) {
    const TraceRecord& in = writer.records()[i];
    const TraceRecord& out = decoded.value()[i];
    EXPECT_EQ(out.timestamp_ns, in.timestamp_ns);
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.dst_ip, in.dst_ip);
    EXPECT_EQ(out.immediate, in.immediate);
    // The header's serving-plane annotations are restored post-decode.
    EXPECT_EQ(out.parsed.header.tenant, in.tenant);
    EXPECT_EQ(out.parsed.header.immediate, in.immediate);
    EXPECT_EQ(proto::encode_dta_payload(out.parsed.header, out.parsed.report),
              proto::encode_dta_payload(in.parsed.header, in.parsed.report));
  }

  // Re-serializing the decoded records reproduces the image bit for bit.
  ReportTraceWriter rebuilt;
  for (const TraceRecord& record : decoded.value()) rebuilt.add(record);
  EXPECT_EQ(rebuilt.serialize(), image);
}

TEST(ReplayTraceTest, EmptyTraceRoundTrips) {
  const ReportTraceWriter empty;
  const auto decoded = decode_trace(ByteSpan(empty.serialize()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

// Every prefix of a valid trace — all truncation points, header and
// record alike — decodes to a typed error, never a crash.
TEST(ReplayTraceTest, EveryTruncationPointIsTypedError) {
  const Bytes image = sample_writer(8).serialize();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const auto decoded = decode_trace(ByteSpan(image.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(is_typed_decode_error(decoded.status()))
        << "prefix " << len << ": " << decoded.status().to_string();
  }
}

TEST(ReplayTraceTest, BadMagicAndVersionRejected) {
  Bytes image = sample_writer(2).serialize();
  Bytes bad_magic = image;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_trace(ByteSpan(bad_magic)).code(),
            StatusCode::kInvalidArgument);

  Bytes bad_version = image;
  bad_version[5] = 0x7F;  // version from the future
  EXPECT_EQ(decode_trace(ByteSpan(bad_version)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplayTraceTest, CorruptRecordCountRejectedBeforeAllocation) {
  Bytes image = sample_writer(2).serialize();
  // record_count is bytes 8..15 big-endian; claim 2^56 records.
  image[8] = 0x01;
  const auto decoded = decode_trace(ByteSpan(image));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), StatusCode::kOutOfRange);
}

TEST(ReplayTraceTest, OverlongPayloadLengthRejected) {
  Bytes image = sample_writer(2).serialize();
  // First record's payload_len is the u32 at header + 20 (after the
  // 8B timestamp, 4B tenant, 4B dst_ip, 1B flags, 3B reserved).
  const std::size_t len_off = telemetry::kTraceHeaderBytes + 20;
  // Larger than the report MTU -> kOutOfRange.
  image[len_off] = 0xFF;
  image[len_off + 1] = 0xFF;
  EXPECT_EQ(decode_trace(ByteSpan(image)).code(), StatusCode::kOutOfRange);
  // Within the MTU but past the end of the buffer -> kOutOfRange.
  image[len_off] = 0;
  image[len_off + 1] = 0;
  image[len_off + 2] = 0x20;
  EXPECT_EQ(decode_trace(ByteSpan(image)).code(), StatusCode::kOutOfRange);
}

// A bit flip anywhere in a record's payload is caught by the CRC.
TEST(ReplayTraceTest, PayloadBitFlipsAreChecksumMismatches) {
  const ReportTraceWriter writer = sample_writer(1);
  const Bytes image = writer.serialize();
  const std::size_t payload_begin = telemetry::kTraceHeaderBytes + 24;
  const std::size_t payload_end = image.size() - 4;  // trailing CRC
  ASSERT_LT(payload_begin, payload_end);
  for (std::size_t i = payload_begin; i < payload_end; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = image;
      flipped[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto decoded = decode_trace(ByteSpan(flipped));
      ASSERT_FALSE(decoded.ok())
          << "payload flip at byte " << i << " bit " << bit << " decoded";
      EXPECT_TRUE(is_typed_decode_error(decoded.status()));
    }
  }
}

// Whole-image corruption sweep: flipping any single byte anywhere must
// yield either a typed error or a clean decode (flips in timestamps or
// reserved bytes are legitimately undetectable) — never a crash. This
// is the ASan/UBSan workhorse.
TEST(ReplayTraceTest, SingleByteCorruptionNeverCrashes) {
  const Bytes image = sample_writer(4).serialize();
  for (std::size_t i = 0; i < image.size(); ++i) {
    Bytes flipped = image;
    flipped[i] ^= 0xFF;
    const auto decoded = decode_trace(ByteSpan(flipped));
    if (!decoded.ok()) {
      EXPECT_TRUE(is_typed_decode_error(decoded.status()))
          << "byte " << i << ": " << decoded.status().to_string();
    }
  }
}

TEST(ReplayTraceTest, TrailingBytesRejected) {
  Bytes image = sample_writer(2).serialize();
  image.push_back(0);
  EXPECT_EQ(decode_trace(ByteSpan(image)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplayTraceTest, MissingFileIsTypedError) {
  const auto decoded =
      telemetry::read_trace_file("/nonexistent/path/nothing.dtatrace");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------- committed golden traces

std::string golden_path(const char* name) {
  return std::string(DTA_TEST_DATA_DIR) + "/" + name;
}

// The committed fixture loads, replays into a fresh backend, and the
// replayed store answers queries (regenerate fixtures with the
// gen_golden_trace tool if the trace format ever bumps its version).
TEST(GoldenTraceTest, ConformanceFixtureReplaysAndServes) {
  const auto records =
      telemetry::read_trace_file(golden_path("conformance_600.dtatrace"));
  ASSERT_TRUE(records.ok()) << records.status().to_string();
  ASSERT_EQ(records.value().size(), 600u);

  Client client(testing::make_backend(testing::BackendKind::kLocal,
                                      testing::conformance_host_config()));
  ASSERT_TRUE(ReplayBackend::replay(records.value(), client.backend()).ok());

  const auto probes = testing::conformance_probes();
  int keywrite_hits = 0;
  auto table = client.keywrite();
  for (const auto& key : probes) {
    if (table.get(key).ok()) ++keywrite_hits;
  }
  EXPECT_GT(keywrite_hits, 50);
}

// Replaying the committed fixture twice produces byte-identical stores
// on every backend kind (the determinism contract, anchored to a file
// on disk rather than an in-process recording).
TEST(GoldenTraceTest, ConformanceFixtureReplaysDeterministically) {
  const auto records =
      telemetry::read_trace_file(golden_path("conformance_600.dtatrace"));
  ASSERT_TRUE(records.ok()) << records.status().to_string();
  for (testing::BackendKind kind : testing::all_backend_kinds()) {
    auto first =
        testing::make_backend(kind, testing::conformance_host_config());
    auto second =
        testing::make_backend(kind, testing::conformance_host_config());
    ASSERT_TRUE(ReplayBackend::replay(records.value(), *first).ok());
    ASSERT_TRUE(ReplayBackend::replay(records.value(), *second).ok());
    EXPECT_TRUE(testing::images_equal(testing::store_images(*first),
                                      testing::store_images(*second)))
        << testing::kind_name(kind);
  }
}

TEST(GoldenTraceTest, KeywriteFixtureLoadsClean) {
  const auto records =
      telemetry::read_trace_file(golden_path("keywrite_2k.dtatrace"));
  ASSERT_TRUE(records.ok()) << records.status().to_string();
  EXPECT_EQ(records.value().size(), 2000u);
  for (const auto& record : records.value()) {
    EXPECT_TRUE(
        std::holds_alternative<proto::KeyWriteReport>(record.parsed.report));
  }
}

}  // namespace
}  // namespace dta

// Fabric-scale deployment tests: many reporters feeding one translator
// over independent uplinks, with arrival-order interleaving.
#include <gtest/gtest.h>

#include "dtalib/deployment.h"
#include "telemetry/records.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 0x51ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

DeploymentConfig base_config(std::uint32_t reporters) {
  DeploymentConfig config;
  config.num_reporters = reporters;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 16;
  config.keywrite = kw;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 14;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 1024; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 12;
  config.keyincrement = ki;
  return config;
}

TEST(Deployment, ManyReportersAllCollected) {
  Deployment deployment(base_config(32));
  for (std::uint32_t sw = 0; sw < 32; ++sw) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      proto::KeyWriteReport r;
      r.key = key_of(sw * 100 + i);
      r.redundancy = 2;
      common::put_u32(r.data, sw * 100 + i);
      deployment.report(r, sw);
    }
  }
  deployment.drain();

  int hits = 0;
  for (std::uint32_t sw = 0; sw < 32; ++sw) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      const auto result = deployment.collector().service().keywrite()->query(
          key_of(sw * 100 + i), 2);
      if (result.status == collector::QueryStatus::kHit) ++hits;
    }
  }
  EXPECT_EQ(hits, 320);
  EXPECT_EQ(deployment.translator().stats().dta_reports_in, 320u);
}

TEST(Deployment, InterleavedPostcardsFromDifferentSwitches) {
  // Each switch on a flow's path reports its own postcard — the cross-
  // switch aggregation case: hop i arrives from reporter i.
  Deployment deployment(base_config(5));
  for (std::uint32_t flow = 0; flow < 50; ++flow) {
    for (std::uint8_t hop = 0; hop < 5; ++hop) {
      proto::PostcardReport r;
      r.key = key_of(flow);
      r.hop = hop;
      r.path_len = 5;
      r.redundancy = 1;
      r.value = (flow + hop) % 1024;
      deployment.report(r, hop);  // reporter per hop
    }
  }
  deployment.drain();

  int found = 0;
  for (std::uint32_t flow = 0; flow < 50; ++flow) {
    const auto result =
        deployment.collector().service().postcarding()->query(key_of(flow), 1);
    if (result.found && result.hop_values.size() == 5) ++found;
  }
  EXPECT_GE(found, 49);
}

TEST(Deployment, CountersAggregateAcrossSwitches) {
  // Network-wide aggregation: every switch increments the same key
  // (Key-Increment's raison d'être).
  Deployment deployment(base_config(8));
  for (std::uint32_t sw = 0; sw < 8; ++sw) {
    proto::KeyIncrementReport r;
    r.key = key_of(7);
    r.redundancy = 2;
    r.counter = 5;
    deployment.report(r, sw);
  }
  deployment.drain();
  EXPECT_EQ(deployment.collector().service().keyincrement()->query(key_of(7), 2),
            40u);
}

TEST(Deployment, LossyUplinksIndependent) {
  DeploymentConfig config = base_config(4);
  config.uplink.loss_rate = 0.5;
  config.uplink.seed = 77;
  Deployment deployment(config);

  for (std::uint32_t sw = 0; sw < 4; ++sw) {
    for (std::uint32_t i = 0; i < 200; ++i) {
      proto::KeyWriteReport r;
      r.key = key_of(sw * 1000 + i);
      r.redundancy = 1;
      common::put_u32(r.data, i);
      deployment.report(r, sw);
    }
  }
  deployment.drain();

  // Each uplink loses ~50% independently; the translator received the
  // survivors from every reporter.
  std::uint64_t delivered = 0;
  for (std::uint32_t sw = 0; sw < 4; ++sw) {
    const std::uint64_t d = deployment.uplink_delivered(sw);
    EXPECT_GT(d, 60u) << "uplink " << sw;
    EXPECT_LT(d, 140u) << "uplink " << sw;
    delivered += d;
  }
  EXPECT_EQ(deployment.translator().stats().dta_reports_in, delivered);
}

TEST(Deployment, ArrivalOrderInterleavesUplinks) {
  // Two reporters emit alternately; after drain the translator has seen
  // frames in timestamp order, not per-uplink bursts. Observable via the
  // postcard cache: single-row cache + alternating flows from the two
  // reporters forces an eviction per postcard if ordering interleaves.
  DeploymentConfig config = base_config(2);
  config.translator.postcard_cache_slots = 1;
  Deployment deployment(config);

  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t sw = 0; sw < 2; ++sw) {
      proto::PostcardReport r;
      r.key = key_of(sw);  // flow per reporter -> collides in the 1-row cache
      r.hop = static_cast<std::uint8_t>(round % 5);
      r.path_len = 5;
      r.redundancy = 1;
      r.value = 1;
      deployment.report(r, sw);
    }
  }
  deployment.drain();
  // Interleaved arrival order evicts the resident flow nearly every
  // time; bursty (per-uplink) delivery would evict only once.
  EXPECT_GE(deployment.translator().postcarding()->stats().early_emissions,
            10u);
}

}  // namespace
}  // namespace dta

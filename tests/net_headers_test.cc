#include "net/headers.h"

#include <gtest/gtest.h>

namespace dta::net {
namespace {

using common::ByteSpan;
using common::Bytes;
using common::Cursor;

TEST(Ethernet, EncodeDecodeRoundTrip) {
  EthernetHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  h.ether_type = kEtherTypeIpv4;

  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), EthernetHeader::kSize);

  Cursor cur((ByteSpan(buf)));
  auto decoded = EthernetHeader::decode(cur);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->dst, h.dst);
  EXPECT_EQ(decoded->src, h.src);
  EXPECT_EQ(decoded->ether_type, h.ether_type);
}

TEST(Ipv4, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.src_ip = 0x0A000001;
  h.dst_ip = 0x0A0000C0;
  h.total_length = 128;
  h.ttl = 12;
  h.dscp = 9;

  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), Ipv4Header::kSize);

  Cursor cur((ByteSpan(buf)));
  auto decoded = Ipv4Header::decode(cur);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->src_ip, h.src_ip);
  EXPECT_EQ(decoded->dst_ip, h.dst_ip);
  EXPECT_EQ(decoded->total_length, h.total_length);
  EXPECT_EQ(decoded->ttl, h.ttl);
  EXPECT_EQ(decoded->dscp, h.dscp);
}

TEST(Ipv4, HeaderChecksumValidates) {
  Ipv4Header h;
  h.src_ip = 0xC0A80001;
  h.dst_ip = 0xC0A80002;
  h.total_length = 60;
  Bytes buf;
  h.encode(buf);
  // RFC 791: summing the header including its checksum yields 0xFFFF
  // complement, i.e. checksum(header) == 0.
  EXPECT_EQ(Ipv4Header::checksum(ByteSpan(buf)), 0u);
}

TEST(Ipv4, RejectsNonV4) {
  Bytes buf(20, 0);
  buf[0] = 0x65;  // version 6
  Cursor cur((ByteSpan(buf)));
  EXPECT_FALSE(Ipv4Header::decode(cur));
}

TEST(Udp, EncodeDecodeRoundTrip) {
  UdpHeader h;
  h.src_port = 51000;
  h.dst_port = kDtaUdpPort;
  h.length = 44;
  Bytes buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), UdpHeader::kSize);
  Cursor cur((ByteSpan(buf)));
  auto decoded = UdpHeader::decode(cur);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->src_port, h.src_port);
  EXPECT_EQ(decoded->dst_port, h.dst_port);
  EXPECT_EQ(decoded->length, h.length);
}

TEST(UdpFrame, BuildParseRoundTrip) {
  const Bytes payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const Bytes frame = build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                      0x0A000001, 0x0A000002, 1234, 5678,
                                      ByteSpan(payload));
  auto view = parse_udp_frame(ByteSpan(frame));
  ASSERT_TRUE(view);
  EXPECT_EQ(view->ip.src_ip, 0x0A000001u);
  EXPECT_EQ(view->ip.dst_ip, 0x0A000002u);
  EXPECT_EQ(view->udp.src_port, 1234);
  EXPECT_EQ(view->udp.dst_port, 5678);
  ASSERT_EQ(view->payload_length, payload.size());
  EXPECT_EQ(Bytes(frame.begin() + view->payload_offset,
                  frame.begin() + view->payload_offset + view->payload_length),
            payload);
}

TEST(UdpFrame, TotalLengthsConsistent) {
  const Bytes payload(100, 0xAA);
  const Bytes frame = build_udp_frame({}, {}, 1, 2, 3, 4, ByteSpan(payload));
  auto view = parse_udp_frame(ByteSpan(frame));
  ASSERT_TRUE(view);
  EXPECT_EQ(view->ip.total_length,
            Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  EXPECT_EQ(view->udp.length, UdpHeader::kSize + payload.size());
}

TEST(UdpFrame, RejectsTruncated) {
  const Bytes payload(32, 1);
  Bytes frame = build_udp_frame({}, {}, 1, 2, 3, 4, ByteSpan(payload));
  frame.resize(frame.size() - 20);  // cut into the payload
  EXPECT_FALSE(parse_udp_frame(ByteSpan(frame)));
}

TEST(UdpFrame, RejectsNonUdpProtocol) {
  const Bytes payload(8, 1);
  Bytes frame = build_udp_frame({}, {}, 1, 2, 3, 4, ByteSpan(payload));
  frame[14 + 9] = 6;  // IP protocol -> TCP
  EXPECT_FALSE(parse_udp_frame(ByteSpan(frame)));
}

TEST(UdpFrame, RejectsGarbage) {
  Bytes junk(10, 0xFF);
  EXPECT_FALSE(parse_udp_frame(ByteSpan(junk)));
}

}  // namespace
}  // namespace dta::net

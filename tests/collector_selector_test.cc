// CollectorSelector tests: all three partition policies, Append list
// contiguity, SelectorStats accounting, and determinism of the
// two-level (host, shard) mapping.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <tuple>

#include "common/shard_math.h"
#include "translator/collector_selector.h"

namespace dta::translator {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint64_t id) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= z >> 31;
  Bytes b;
  common::put_u64(b, z);
  return TelemetryKey::from(ByteSpan(b));
}

proto::Report keywrite(std::uint64_t id) {
  proto::KeyWriteReport r;
  r.key = key_of(id);
  r.redundancy = 2;
  common::put_u32(r.data, static_cast<std::uint32_t>(id));
  return r;
}

proto::Report append(std::uint32_t list) {
  proto::AppendReport r;
  r.list_id = list;
  r.entry_size = 4;
  Bytes e;
  common::put_u32(e, list);
  r.entries.push_back(std::move(e));
  return r;
}

// ------------------------------------------------------------- policies

TEST(CollectorSelector, ByDestinationIpMapsIpsRoundRobin) {
  CollectorSelector selector(PartitionPolicy::kByDestinationIp, 3);
  for (std::uint32_t ip = 0; ip < 30; ++ip) {
    const auto route = selector.route(keywrite(7), ip);
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(route[0], ip % 3);
  }
}

TEST(CollectorSelector, ByKeyHashIsStableAndSpreads) {
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 4);
  std::set<std::uint32_t> seen;
  for (std::uint64_t id = 0; id < 400; ++id) {
    const auto first = selector.route(keywrite(id), 0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(selector.route(keywrite(id), 0), first) << "key " << id;
    seen.insert(first[0]);
  }
  EXPECT_EQ(seen.size(), 4u);  // every collector owns part of the key space
}

TEST(CollectorSelector, ByKeyHashIgnoresDestinationIp) {
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 4);
  const auto a = selector.route(keywrite(42), 0x0A000001);
  const auto b = selector.route(keywrite(42), 0x0A0000FF);
  EXPECT_EQ(a, b);
}

TEST(CollectorSelector, ReplicateReachesEveryCollector) {
  CollectorSelector selector(PartitionPolicy::kReplicate, 3);
  const auto route = selector.route(keywrite(1), 0);
  EXPECT_EQ(route, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(selector.stats().replicated_copies, 2u);
}

// ------------------------------------------------- Append contiguity

TEST(CollectorSelector, AppendListsStayContiguousPerCollector) {
  // Every entry of one list must land on one collector, and the
  // host-local ids of the lists a collector owns must be dense
  // (0, 1, 2, ...) so its store capacity divides evenly.
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 3);
  std::map<std::uint32_t, std::set<std::uint32_t>> local_ids_per_host;
  for (std::uint32_t list = 0; list < 30; ++list) {
    std::set<std::uint32_t> hosts;
    for (int rep = 0; rep < 5; ++rep) {
      const auto route = selector.route(append(list), 0);
      ASSERT_EQ(route.size(), 1u);
      hosts.insert(route[0]);
    }
    EXPECT_EQ(hosts.size(), 1u) << "list " << list << " split across hosts";
    EXPECT_EQ(*hosts.begin(), list % 3);
    local_ids_per_host[*hosts.begin()].insert(
        selector.host_local_list(list));
  }
  for (const auto& [host, locals] : local_ids_per_host) {
    EXPECT_EQ(locals.size(), 10u) << "host " << host;
    EXPECT_EQ(*locals.begin(), 0u) << "host " << host;
    EXPECT_EQ(*locals.rbegin(), 9u)
        << "host " << host << ": local ids not contiguous";
  }
}

TEST(CollectorSelector, HostLocalListFoldsOnlyUnderKeyHash) {
  CollectorSelector hash(PartitionPolicy::kByKeyHash, 2);
  CollectorSelector repl(PartitionPolicy::kReplicate, 2);
  EXPECT_EQ(hash.host_local_list(6), 3u);
  // Replication leaves every host with the full list space; folding
  // would alias lists 6 and 7 onto one local id.
  EXPECT_EQ(repl.host_local_list(6), 6u);
}

// ------------------------------------------------------ SelectorStats

TEST(CollectorSelector, StatsCountPerCollector) {
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 4);
  for (std::uint64_t id = 0; id < 1000; ++id) selector.route(keywrite(id), 0);
  const SelectorStats& stats = selector.stats();
  EXPECT_EQ(stats.routed, 1000u);
  EXPECT_EQ(stats.replicated_copies, 0u);
  ASSERT_EQ(stats.per_collector.size(), 4u);
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_GT(stats.per_collector[c], 150u) << "collector " << c;
    total += stats.per_collector[c];
  }
  EXPECT_EQ(total, 1000u);
}

TEST(CollectorSelector, ReplicateStatsCountEveryCopy) {
  CollectorSelector selector(PartitionPolicy::kReplicate, 3);
  for (std::uint64_t id = 0; id < 100; ++id) selector.route(keywrite(id), 0);
  EXPECT_EQ(selector.stats().routed, 100u);
  EXPECT_EQ(selector.stats().replicated_copies, 200u);
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(selector.stats().per_collector[c], 100u);
  }
}

// ------------------------------------------------- two-level mapping

TEST(CollectorSelector, TwoLevelMappingIsDeterministic) {
  // The (host, shard) decision must be a pure function of the report:
  // identical across calls and across selector instances (the query
  // tier rebuilds the route independently of the ingest path).
  CollectorSelector a(PartitionPolicy::kByKeyHash, 4, 4);
  CollectorSelector b(PartitionPolicy::kByKeyHash, 4, 4);
  for (std::uint64_t id = 0; id < 300; ++id) {
    const auto ra = a.route_cluster(keywrite(id), 0);
    const auto rb = b.route_cluster(keywrite(id), 0);
    ASSERT_EQ(ra.size(), 1u);
    EXPECT_EQ(ra, rb) << "key " << id;
    EXPECT_EQ(ra, a.route_cluster(keywrite(id), 0)) << "key " << id;
    EXPECT_LT(ra[0].host, 4u);
    EXPECT_LT(ra[0].shard, 4u);
    // The probe API used by the query tier agrees with the route.
    EXPECT_EQ(*a.owner_host(key_of(id)), ra[0].host);
    EXPECT_EQ(a.shard_within_host(key_of(id)), ra[0].shard);
  }
}

TEST(CollectorSelector, TwoLevelTiersAreUncorrelated) {
  // Keys pinned to one host must still spread over that host's shards:
  // the host hash and the shard hash use distinct CRC engines.
  CollectorSelector selector(PartitionPolicy::kByKeyHash, 4, 4);
  std::array<std::set<std::uint32_t>, 4> shards_per_host;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    const auto route = selector.route_cluster(keywrite(id), 0);
    shards_per_host[route[0].host].insert(route[0].shard);
  }
  for (std::uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(shards_per_host[h].size(), 4u)
        << "host " << h << " does not use all its shards";
  }
}

TEST(CollectorSelector, ReplicateCopiesShareTheShardIndex) {
  // The shard tier only sees the key, so every replica host places the
  // copy on the same shard index — queries probe one shard per host.
  CollectorSelector selector(PartitionPolicy::kReplicate, 3, 4);
  for (std::uint64_t id = 0; id < 100; ++id) {
    const auto route = selector.route_cluster(keywrite(id), 0);
    ASSERT_EQ(route.size(), 3u);
    for (const auto& r : route) EXPECT_EQ(r.shard, route[0].shard);
  }
}

TEST(CollectorSelector, TwoLevelAppendMappingIsDense) {
  // Global list -> (host, host-local, shard, shard-local): the double
  // fold keeps ids dense at both levels and never aliases two lists.
  const std::uint32_t hosts = 2, shards = 2;
  CollectorSelector selector(PartitionPolicy::kByKeyHash, hosts, shards);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> placed;
  for (std::uint32_t list = 0; list < 16; ++list) {
    const auto route = selector.route_cluster(append(list), 0);
    ASSERT_EQ(route.size(), 1u);
    const std::uint32_t local = selector.host_local_list(list);
    const std::uint32_t shard_local = common::list_local_id(local, shards);
    EXPECT_EQ(route[0].shard, selector.shard_within_host_of_list(local));
    const auto placement =
        std::make_tuple(route[0].host, route[0].shard, shard_local);
    EXPECT_TRUE(placed.insert(placement).second)
        << "list " << list << " aliases another list's slot";
    EXPECT_LT(shard_local, 16u / (hosts * shards));
  }
}

}  // namespace
}  // namespace dta::translator

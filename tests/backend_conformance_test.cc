// Backend-conformance kit: every dta::Client scenario holds over all
// four Backend kinds — LocalBackend (direct execution), ClusterBackend
// (replicated hosts), FabricBackend (the real UDP/translator/RoCE wire
// loop) and ReplayBackend (recording decorator) — and the record/replay
// differential: a trace recorded from any backend replays into a fresh
// backend with identical client-visible results, and two replays of the
// same trace produce byte-identical store state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <variant>
#include <vector>

#include "collector/shard_index.h"
#include "dta/report_builders.h"
#include "tests/backend_fixtures.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;
using testing::BackendKind;
using testing::conformance_host_config;
using testing::conformance_probes;
using testing::conformance_workload;
using testing::images_equal;
using testing::ingest_copies;
using testing::kind_name;
using testing::make_backend;
using testing::make_client;
using testing::observe;
using testing::ObservedResults;
using testing::store_images;

class BackendConformanceTest : public ::testing::TestWithParam<BackendKind> {};

// ------------------------------------------------------ Key-Write

TEST_P(BackendConformanceTest, KeyWriteRoundTrip) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id * 7 + 3).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    const auto value = table.get_u32(reports::mixed_key(id));
    if (value.ok() && *value == id * 7 + 3) ++hits;
  }
  EXPECT_GE(hits, 298);  // slot collisions may cost a key or two

  const auto miss = table.get(reports::mixed_key(999999));
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), StatusCode::kNotFound);
}

TEST_P(BackendConformanceTest, KeyWriteRawBytesRoundTrip) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  Bytes value;
  common::put_u32(value, 0xDEADBEEF);
  ASSERT_TRUE(table.put(reports::u32_key(7), ByteSpan(value)).ok());
  ASSERT_TRUE(client.flush().ok());
  const auto got = table.get(reports::u32_key(7));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::load_u32(got->data()), 0xDEADBEEFu);
}

TEST_P(BackendConformanceTest, GetManyResolvesBatchInInputOrder) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id ^ 0x5A).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  std::vector<TelemetryKey> keys;
  for (std::uint32_t id = 0; id < 300; id += 3) {
    keys.push_back(reports::mixed_key(id));
  }
  keys.push_back(reports::mixed_key(999999));  // never written
  const auto results = table.get_many(keys);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), keys.size());
  int hits = 0;
  for (std::size_t i = 0; i + 1 < results->size(); ++i) {
    const auto& value = (*results)[i];
    if (value && common::load_u32(value->data()) == ((3 * i) ^ 0x5A)) ++hits;
  }
  EXPECT_GE(hits, 98);
  EXPECT_FALSE(results->back().has_value());
}

TEST_P(BackendConformanceTest, ZeroCopyViewsMatchCopiesAndOutliveRefresh) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 300; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id * 11 + 1).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  int hits = 0;
  for (std::uint32_t id = 0; id < 300; ++id) {
    const auto view = table.get_view(reports::mixed_key(id));
    if (view.ok() && view->size() == 4 &&
        common::load_u32(view->data()) == id * 11 + 1) {
      ++hits;
    }
  }
  EXPECT_GE(hits, 298);
  EXPECT_EQ(table.get_view(reports::mixed_key(999999)).code(),
            StatusCode::kNotFound);

  // A held view pins its snapshot across an overwrite + refresh.
  const auto held = table.get_view(reports::mixed_key(5));
  ASSERT_TRUE(held.ok());
  const std::uint32_t before = common::load_u32(held->data());
  ASSERT_TRUE(table.put_u32(reports::mixed_key(5), 0xFEED).ok());
  ASSERT_TRUE(client.flush().ok());
  const auto after = table.get_view(reports::mixed_key(5));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(common::load_u32(after->data()), 0xFEEDu);
  EXPECT_EQ(common::load_u32(held->data()), before);
  const Bytes detached = held->to_bytes();
  EXPECT_EQ(common::load_u32(detached.data()), before);

  auto list = client.list(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(list.append_u32(700 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto batch = client.events(1).max(10).run();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->entries.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(common::load_u32(batch->entries[i].data()), 700 + i);
  }
}

TEST_P(BackendConformanceTest, RedundancyBeyondEngineCountRejected) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  EXPECT_EQ(table.put_u32(reports::u32_key(1), 1, /*redundancy=*/9).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(client.counters().add(reports::u32_key(1), 1, 9).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 1, 8).ok());
  ASSERT_TRUE(client.flush().ok());
  QueryOptions nine;
  nine.redundancy = 9;
  EXPECT_EQ(table.get(reports::u32_key(1), nine).code(),
            StatusCode::kOutOfRange);
  QueryOptions eight;
  eight.redundancy = 8;
  const auto got = table.get_u32(reports::u32_key(1), eight);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1u);
}

TEST_P(BackendConformanceTest, AsyncGetsResolve) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id + 5).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  std::vector<std::future<Expected<common::Bytes>>> pending;
  for (std::uint32_t id = 0; id < 50; ++id) {
    pending.push_back(table.get_async(reports::mixed_key(id)));
  }
  int hits = 0;
  for (auto& future : pending) {
    if (future.get().ok()) ++hits;
  }
  EXPECT_GE(hits, 49);

  auto batch = table.get_many_async({reports::mixed_key(1)}).get();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_TRUE((*batch)[0].has_value());
}

// --------------------------------------------------- Key-Increment

TEST_P(BackendConformanceTest, CounterRoundTrip) {
  Client client = make_client(GetParam());
  auto counters = client.counters();
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t id = 0; id < 32; ++id) {
      ASSERT_TRUE(counters.add(reports::u32_key(id), id + 1).ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  for (std::uint32_t id = 0; id < 32; ++id) {
    const auto estimate = counters.get(reports::u32_key(id));
    ASSERT_TRUE(estimate.ok()) << estimate.status().to_string();
    EXPECT_GE(*estimate, 3u * (id + 1));  // CMS never underestimates
  }
}

// ---------------------------------------------------------- Append

TEST_P(BackendConformanceTest, AppendRoundTrip) {
  Client client = make_client(GetParam());
  auto list = client.list(3);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(list.append_u32(30 + i).ok());
  }
  ASSERT_TRUE(client.flush().ok());
  const auto events = client.events(list).max(6).run();
  ASSERT_TRUE(events.ok()) << events.status().to_string();
  ASSERT_EQ(events->entries.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(common::load_u32(events->entries[i].data()), 30 + i);
  }
  EXPECT_EQ(events->next.position, 6u);
  EXPECT_EQ(events->remaining, 0u);
}

// ----------------------------------------------------- Postcarding

TEST_P(BackendConformanceTest, PostcardRoundTrip) {
  Client client = make_client(GetParam());
  auto postcards = client.postcards();
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    for (std::uint8_t hop = 0; hop < 5; ++hop) {
      ASSERT_TRUE(postcards
                      .report(reports::u32_key(flow), hop, /*path_len=*/5,
                              (flow + hop) % 4096)
                      .ok());
    }
  }
  ASSERT_TRUE(client.flush().ok());
  int found = 0;
  for (std::uint32_t flow = 0; flow < 100; ++flow) {
    const auto path = postcards.path_of(reports::u32_key(flow));
    if (path.ok() && path->size() == 5 && (*path)[0] == flow % 4096) ++found;
  }
  EXPECT_GE(found, 98);

  const auto miss = postcards.path_of(reports::u32_key(999999));
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), StatusCode::kNotFound);
}

// ------------------------------------------------------ error model

TEST_P(BackendConformanceTest, ErrorModelDistinctCodes) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 11).ok());
  ASSERT_TRUE(client.flush().ok());

  EXPECT_EQ(table.put_u32(TelemetryKey{}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.get(TelemetryKey{}).code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(table.put_u32(reports::u32_key(2), 1, /*redundancy=*/0).code(),
            StatusCode::kInvalidArgument);
  QueryOptions zero_votes;
  zero_votes.redundancy = 0;
  EXPECT_EQ(table.get(reports::u32_key(1), zero_votes).code(),
            StatusCode::kInvalidArgument);

  Bytes wide(64, 0xAB);
  EXPECT_EQ(table.put(reports::u32_key(3), ByteSpan(wide)).code(),
            StatusCode::kOutOfRange);

  const std::uint32_t bogus_list = 1000;
  EXPECT_EQ(client.list(bogus_list).append_u32(1).code(),
            StatusCode::kUnknownList);
  EXPECT_EQ(client.events(bogus_list).max(1).run().code(),
            StatusCode::kUnknownList);

  Bytes wrong_entry(8, 1);
  EXPECT_EQ(client.list(0).append(ByteSpan(wrong_entry)).code(),
            StatusCode::kOutOfRange);

  Bytes huge_entry(260, 2);
  EXPECT_EQ(client.list(0).append(ByteSpan(huge_entry)).code(),
            StatusCode::kOutOfRange);

  // The event query's kOutOfRange is a cursor past the head.
  EXPECT_EQ(client.events(0).since(1u << 30).run().code(),
            StatusCode::kOutOfRange);

  QueryOptions future_floor;
  future_floor.covers_seq = 1u << 30;
  EXPECT_EQ(table.get(reports::u32_key(1), future_floor).code(),
            StatusCode::kStalenessViolation);

  EXPECT_EQ(client.postcards()
                .report(reports::u32_key(1), /*hop=*/9, /*path_len=*/5, 1)
                .code(),
            StatusCode::kOutOfRange);
}

TEST_P(BackendConformanceTest, NotConfiguredPrimitivesReportCleanly) {
  collector::CollectorRuntimeConfig config;
  config.num_shards = 2;
  config.thread_mode = collector::ThreadMode::kInline;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  kw.value_bytes = 4;
  config.keywrite = kw;
  Client client(make_backend(GetParam(), config));

  EXPECT_EQ(client.counters().add(reports::u32_key(1), 1).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.counters().get(reports::u32_key(1)).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.list(0).append_u32(1).code(), StatusCode::kNotConfigured);
  EXPECT_EQ(client.events(0).max(1).run().code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.postcards().report(reports::u32_key(1), 0, 1, 1).code(),
            StatusCode::kNotConfigured);
  EXPECT_EQ(client.postcards().path_of(reports::u32_key(1)).code(),
            StatusCode::kNotConfigured);
  EXPECT_TRUE(client.keywrite().put_u32(reports::u32_key(1), 5).ok());
}

// -------------------------------------------------- failover paths

TEST_P(BackendConformanceTest, FailoverAndUnavailability) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id + 5).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  if (GetParam() != BackendKind::kCluster) {
    // Single-collector backends have no host to fail — typed, not UB.
    EXPECT_EQ(client.fail_host(0).code(), StatusCode::kUnsupported);
    return;
  }

  ASSERT_TRUE(client.fail_host(0).ok());
  int hits = 0;
  for (std::uint32_t id = 0; id < 100; ++id) {
    const auto value = table.get_u32(reports::mixed_key(id));
    if (value.ok() && *value == id + 5) ++hits;
  }
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(client.stats().live_hosts, 1u);

  ASSERT_TRUE(client.fail_host(1).ok());
  const auto dead = table.get(reports::mixed_key(1));
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable);
}

// -------------------------------------------- staleness-budget path

TEST_P(BackendConformanceTest, StalenessBudgetServesStaleAndFloorOverrides) {
  Client client = make_client(GetParam());
  auto table = client.keywrite();
  ASSERT_TRUE(table.put_u32(reports::u32_key(1), 11).ok());
  ASSERT_TRUE(client.flush().ok());
  ASSERT_TRUE(table.get_u32(reports::u32_key(1)).ok());  // warm the cache

  ASSERT_TRUE(table.put_u32(reports::u32_key(2), 22).ok());
  ASSERT_TRUE(client.flush().ok());
  QueryOptions stale;
  stale.staleness = collector::SnapshotStalenessBudget{};
  stale.staleness->generations = 1u << 20;
  const auto stale_read = table.get_u32(reports::u32_key(2), stale);
  if (stale_read.ok()) {
    EXPECT_EQ(*stale_read, 22u);  // a fresh backend may not serve stale
  } else {
    EXPECT_EQ(stale_read.code(), StatusCode::kNotFound);
  }

  QueryOptions fresh = stale;
  fresh.read_your_submits = true;
  const auto fresh_read = table.get_u32(reports::u32_key(2), fresh);
  ASSERT_TRUE(fresh_read.ok()) << fresh_read.status().to_string();
  EXPECT_EQ(*fresh_read, 22u);

  const auto exact = table.get_u32(reports::u32_key(2));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 22u);
}

// ------------------------------------------- concurrency (TSan target)

TEST_P(BackendConformanceTest, QueriesRunConcurrentlyWithIngest) {
  Client client = make_client(GetParam(), collector::ThreadMode::kThreaded);
  auto table = client.keywrite();
  std::vector<std::future<Expected<common::Bytes>>> pending;
  std::uint32_t next_id = 0;
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 50; ++i, ++next_id) {
      ASSERT_TRUE(
          table.put_u32(reports::mixed_key(next_id), next_id * 7 + 1).ok());
    }
    if (round > 0) {
      const std::uint32_t probe = (round - 1) * 50;
      pending.push_back(table.get_async(reports::mixed_key(probe)));
      pending.push_back(table.get_async(reports::mixed_key(probe + 49)));
    }
  }
  int hits = 0;
  for (auto& future : pending) {
    if (future.get().ok()) ++hits;
  }
  EXPECT_EQ(hits, static_cast<int>(pending.size()));
  client.stop();
  EXPECT_EQ(client.stats().ingest.reports_in,
            ingest_copies(GetParam()) * 1000u);
}

// Concurrent submitters + queriers against the wire-fidelity backend
// (the Fabric object itself is synchronous; the backend's mutex must
// make it safe), and record-while-serving on the replay decorator.
TEST_P(BackendConformanceTest, ConcurrentSubmitAndQueryStress) {
  Client client = make_client(GetParam(), collector::ThreadMode::kThreaded);
  client.tenants().register_tenant(2, {});
  client.tenants().register_tenant(3, {});

  constexpr std::uint32_t kPerTenant = 200;
  auto submit_as = [&client](TenantId tenant, std::uint32_t base) {
    ReportOptions opts;
    opts.tenant = tenant;
    auto table = client.keywrite();
    for (std::uint32_t i = 0; i < kPerTenant; ++i) {
      ASSERT_TRUE(
          table.put_u32(reports::mixed_key(base + i), i + 1, 2, opts).ok());
    }
  };
  std::atomic<bool> done{false};
  std::thread querier([&] {
    auto table = client.keywrite();
    while (!done.load(std::memory_order_relaxed)) {
      (void)table.get_u32(reports::mixed_key(0));
    }
  });
  std::thread t2([&] { submit_as(2, 0); });
  std::thread t3([&] { submit_as(3, 1u << 20); });
  t2.join();
  t3.join();
  done.store(true, std::memory_order_relaxed);
  querier.join();
  ASSERT_TRUE(client.flush().ok());
  client.stop();

  EXPECT_EQ(client.stats().ingest.reports_in,
            ingest_copies(GetParam()) * 2u * kPerTenant);
  EXPECT_EQ(client.tenants().counters(2).submits_admitted, kPerTenant);
  EXPECT_EQ(client.tenants().counters(3).submits_admitted, kPerTenant);

  // Record-while-serving: everything both tenants submitted is in the
  // trace when the backend is a recorder.
  if (auto* replay = dynamic_cast<ReplayBackend*>(&client.backend())) {
    EXPECT_EQ(replay->recorded(), 2u * kPerTenant);
  }
}

// ------------------------------------------------------------- stats

TEST_P(BackendConformanceTest, StatsAggregateIngestAndTranslation) {
  Client client = make_client(GetParam());
  for (std::uint32_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(client.keywrite().put_u32(reports::mixed_key(id), id).ok());
    ASSERT_TRUE(client.counters().add(reports::mixed_key(id), 2).ok());
  }
  ASSERT_TRUE(client.list(1).append_u32(9).ok());
  ASSERT_TRUE(client.flush().ok());

  const auto stats = client.stats();
  const std::uint64_t copies = ingest_copies(GetParam());
  EXPECT_EQ(stats.ingest.reports_in, copies * 81u);
  EXPECT_EQ(stats.translation.keywrite_reports, copies * 40u);
  EXPECT_EQ(stats.translation.keywrite_writes, copies * 80u);  // N=2
  EXPECT_EQ(stats.translation.keyincrement_reports, copies * 40u);
  EXPECT_EQ(stats.translation.fetch_adds, copies * 80u);
  EXPECT_EQ(stats.translation.append_entries_in, copies * 1u);
  EXPECT_EQ(stats.num_hosts, copies);
  EXPECT_EQ(stats.live_hosts, copies);
  ASSERT_EQ(stats.per_host.size(), copies);
  EXPECT_EQ(stats.per_host[0].ingest.reports_in, 81u);
  EXPECT_FALSE(stats.per_host[0].failed);
  EXPECT_GT(client.modeled_verbs_per_sec(), 0.0);
}

// ------------------------------------------------- multi-tenant plane

TEST_P(BackendConformanceTest, TenantQuotaExhaustionIsTypedNotSilent) {
  Client client = make_client(GetParam());
  TenantConfig config;
  config.quota.submits_per_second = 1.0;
  config.quota.submit_burst = 5;
  client.tenants().register_tenant(7, config);

  ReportOptions as7;
  as7.tenant = 7;
  auto table = client.keywrite();
  int admitted = 0, shed = 0;
  Status last_shed = Status::Ok();
  for (std::uint32_t id = 0; id < 20; ++id) {
    const Status status = table.put_u32(reports::u32_key(id), id, 2, as7);
    if (status.ok()) {
      ++admitted;
    } else {
      ++shed;
      last_shed = status;
    }
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(shed, 15);
  EXPECT_EQ(last_shed.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(last_shed.retry_after_ns(), 0u);
  EXPECT_EQ(client.tenants().counters(7).submits_admitted, 5u);
  EXPECT_EQ(client.tenants().counters(7).submits_shed, 15u);
  EXPECT_TRUE(table.put_u32(reports::u32_key(100), 1).ok());

  // A recorder records only the admitted stream: the 15 shed submits
  // must not be in the trace.
  if (auto* replay = dynamic_cast<ReplayBackend*>(&client.backend())) {
    EXPECT_EQ(replay->recorded(), 6u);
  }
}

TEST_P(BackendConformanceTest, PerTenantStatsAttributeIngest) {
  Client client = make_client(GetParam());
  client.tenants().register_tenant(2, {});
  client.tenants().register_tenant(3, {});

  ReportOptions as2, as3;
  as2.tenant = 2;
  as3.tenant = 3;
  auto table = client.keywrite();
  for (std::uint32_t id = 0; id < 12; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id, 2, as2).ok());
  }
  for (std::uint32_t id = 100; id < 105; ++id) {
    ASSERT_TRUE(table.put_u32(reports::mixed_key(id), id, 2, as3).ok());
  }
  ASSERT_TRUE(client.flush().ok());

  const auto stats = client.stats();
  const std::uint64_t copies = ingest_copies(GetParam());
  auto row_of = [&](TenantId tenant) -> const TenantStatsRow* {
    for (const auto& row : stats.per_tenant) {
      if (row.tenant == tenant) return &row;
    }
    return nullptr;
  };
  const auto* row2 = row_of(2);
  const auto* row3 = row_of(3);
  ASSERT_NE(row2, nullptr);
  ASSERT_NE(row3, nullptr);
  EXPECT_EQ(row2->counters.submits_admitted, 12u);
  EXPECT_EQ(row2->ingest_reports, copies * 12u);
  EXPECT_EQ(row3->counters.submits_admitted, 5u);
  EXPECT_EQ(row3->ingest_reports, copies * 5u);
  for (std::size_t i = 1; i < stats.per_tenant.size(); ++i) {
    EXPECT_LT(stats.per_tenant[i - 1].tenant, stats.per_tenant[i].tenant);
  }
}

// =================================================== record / replay

// Helper: run the standard workload through `backend` (recording if it
// is a recorder), rotating tenants 0/1/2.
void submit_workload(Backend& backend,
                     const std::vector<proto::ParsedDta>& workload) {
  for (std::size_t i = 0; i < workload.size(); ++i) {
    ReportOptions opts;
    opts.tenant = static_cast<TenantId>(i % 3);
    ASSERT_TRUE(backend.submit(workload[i], opts).ok());
  }
  ASSERT_TRUE(backend.flush().ok());
}

// A trace recorded over any backend kind replays into a fresh backend
// of the same kind with identical client-visible query results.
TEST_P(BackendConformanceTest, ReplayReproducesIdenticalQueryResults) {
  const auto workload = conformance_workload(600);
  const auto probes = conformance_probes();

  auto recorder = std::make_unique<ReplayBackend>(
      make_backend(GetParam(), conformance_host_config()));
  submit_workload(*recorder, workload);
  const auto records = recorder->records();
  ASSERT_EQ(records.size(), workload.size());

  Client recorded_client(std::move(recorder));
  const auto recorded_results = observe(recorded_client, probes, 8, 32);

  Client fresh_client(make_backend(GetParam(), conformance_host_config()));
  ASSERT_TRUE(
      ReplayBackend::replay(records, fresh_client.backend()).ok());
  const auto replayed_results = observe(fresh_client, probes, 8, 32);

  EXPECT_TRUE(recorded_results == replayed_results)
      << "replay diverged on " << kind_name(GetParam());
}

// The cross-backend differential: with single-shard geometry (so every
// backend computes the same slot layout), one recorded trace replayed
// through Local, Cluster, Fabric and Replay yields identical
// client-visible results on all four.
TEST(BackendDifferentialTest, OneTraceIdenticalResultsAcrossAllBackends) {
  const auto config =
      conformance_host_config(collector::ThreadMode::kInline, 1);
  const auto workload = conformance_workload(600);
  const auto probes = conformance_probes();

  ReplayBackend recorder(std::make_unique<LocalBackend>(config));
  submit_workload(recorder, workload);
  // Serialize + decode round-trip: the replayed records are the ones
  // that went through the wire format, not the in-memory ones.
  const auto decoded =
      telemetry::decode_trace(common::ByteSpan(recorder.serialize_trace()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), workload.size());

  std::vector<ObservedResults> all;
  for (BackendKind kind : testing::all_backend_kinds()) {
    Client client(make_backend(kind, config));
    ASSERT_TRUE(
        ReplayBackend::replay(decoded.value(), client.backend()).ok())
        << kind_name(kind);
    all.push_back(observe(client, probes, 8, 32));
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[0] == all[i])
        << kind_name(testing::all_backend_kinds()[i])
        << " diverged from Local";
  }
}

// Determinism: two replays of the same trace produce byte-identical
// store state — every registered region memcmp-equal — on every
// backend kind.
TEST_P(BackendConformanceTest, ReplayDeterminismByteIdenticalStores) {
  const auto config = conformance_host_config();
  const auto workload = conformance_workload(400);

  ReplayBackend recorder(std::make_unique<LocalBackend>(config));
  submit_workload(recorder, workload);
  const auto records = recorder.records();

  auto first = make_backend(GetParam(), config);
  auto second = make_backend(GetParam(), config);
  ASSERT_TRUE(ReplayBackend::replay(records, *first).ok());
  ASSERT_TRUE(ReplayBackend::replay(records, *second).ok());
  EXPECT_TRUE(images_equal(store_images(*first), store_images(*second)))
      << "two replays diverged on " << kind_name(GetParam());
}

// The wire path computes the same bytes as direct execution: a trace
// replayed through the Fabric leaves the single-shard stores
// byte-identical to LocalBackend's (the PR 7 direct-vs-wire
// equivalence, now holding end-to-end through the serving plane).
TEST(BackendDifferentialTest, WireAndDirectStoresByteIdentical) {
  const auto config =
      conformance_host_config(collector::ThreadMode::kInline, 1);
  const auto workload = conformance_workload(400);

  ReplayBackend recorder(std::make_unique<LocalBackend>(config));
  submit_workload(recorder, workload);
  const auto records = recorder.records();

  auto local = make_backend(BackendKind::kLocal, config);
  auto fabric = make_backend(BackendKind::kFabric, config);
  ASSERT_TRUE(ReplayBackend::replay(records, *local).ok());
  ASSERT_TRUE(ReplayBackend::replay(records, *fabric).ok());
  EXPECT_TRUE(images_equal(store_images(*local), store_images(*fabric)));
}

// ================================================ indexed range queries

// Ground-truth key catalog per primitive, extracted from the workload
// itself: these are exactly the keys the index must contain, so a
// sorted point-get sweep over them is the scan-path reference the
// indexed range has to match byte-for-byte.
std::vector<TelemetryKey> reported_keys(
    const std::vector<proto::ParsedDta>& workload, bool keywrite) {
  std::vector<TelemetryKey> keys;
  for (const auto& parsed : workload) {
    if (keywrite) {
      if (const auto* kw =
              std::get_if<proto::KeyWriteReport>(&parsed.report)) {
        keys.push_back(kw->key);
      }
    } else if (const auto* ki =
                   std::get_if<proto::KeyIncrementReport>(&parsed.report)) {
      keys.push_back(ki->key);
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const TelemetryKey& a, const TelemetryKey& b) {
              return collector::index_key_less(a, b);
            });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<RangeEntry> scan_keywrite(
    Client& client, const std::vector<TelemetryKey>& catalog) {
  std::vector<RangeEntry> out;
  auto table = client.keywrite();
  for (const auto& key : catalog) {
    auto value = table.get(key);
    if (value.ok()) out.push_back({key, std::move(*value)});
  }
  return out;
}

std::vector<CounterRangeEntry> scan_counters(
    Client& client, const std::vector<TelemetryKey>& catalog) {
  std::vector<CounterRangeEntry> out;
  auto counters = client.counters();
  for (const auto& key : catalog) {
    const auto estimate = counters.get(key);
    if (estimate.ok()) out.push_back({key, *estimate});
  }
  return out;
}

// The core differential: unbounded indexed ranges over both indexed
// primitives equal the scan sweep exactly — same keys, same bytes, same
// estimates.
void expect_indexed_equals_scan(Client& client,
                                const std::vector<proto::ParsedDta>& workload,
                                const char* label) {
  const auto kw_catalog = reported_keys(workload, /*keywrite=*/true);
  const auto kw_expected = scan_keywrite(client, kw_catalog);
  ASSERT_GT(kw_expected.size(), 50u) << label;
  const auto kw_indexed = client.range(client.keywrite()).run();
  ASSERT_TRUE(kw_indexed.ok()) << label;
  EXPECT_FALSE(kw_indexed->truncated) << label;
  ASSERT_EQ(kw_indexed->entries.size(), kw_expected.size()) << label;
  for (std::size_t i = 0; i < kw_expected.size(); ++i) {
    EXPECT_EQ(kw_indexed->entries[i], kw_expected[i])
        << label << " keywrite entry " << i;
  }

  const auto ct_catalog = reported_keys(workload, /*keywrite=*/false);
  const auto ct_expected = scan_counters(client, ct_catalog);
  ASSERT_FALSE(ct_expected.empty()) << label;
  const auto ct_indexed = client.range(client.counters()).run();
  ASSERT_TRUE(ct_indexed.ok()) << label;
  ASSERT_EQ(ct_indexed->entries.size(), ct_expected.size()) << label;
  for (std::size_t i = 0; i < ct_expected.size(); ++i) {
    EXPECT_EQ(ct_indexed->entries[i], ct_expected[i])
        << label << " counter entry " << i;
  }
}

TEST_P(BackendConformanceTest, IndexedRangeMatchesScanPath) {
  const auto workload = conformance_workload(600);
  Client client = make_client(GetParam());
  submit_workload(client.backend(), workload);
  expect_indexed_equals_scan(client, workload, kind_name(GetParam()));
}

// Bounded windows: a [from, to] slice of the index equals the same
// slice of the scan sweep, including both inclusive endpoints.
TEST_P(BackendConformanceTest, IndexedRangeBoundsSliceExactly) {
  const auto workload = conformance_workload(600);
  Client client = make_client(GetParam());
  submit_workload(client.backend(), workload);

  const auto expected =
      scan_keywrite(client, reported_keys(workload, /*keywrite=*/true));
  ASSERT_GT(expected.size(), 20u);
  const std::size_t lo = expected.size() / 4;
  const std::size_t hi = (3 * expected.size()) / 4;
  const auto window = client.range(client.keywrite())
                          .from(expected[lo].key)
                          .to(expected[hi].key)
                          .run();
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->entries.size(), hi - lo + 1);
  for (std::size_t i = 0; i < window->entries.size(); ++i) {
    EXPECT_EQ(window->entries[i], expected[lo + i]) << "entry " << i;
  }
}

// Pagination: concatenating limit-37 pages through the opaque resume
// cursor reproduces the unlimited result exactly — no dropped, no
// duplicated entries at page seams.
TEST_P(BackendConformanceTest, IndexedRangePagesConcatenateToFullResult) {
  const auto workload = conformance_workload(600);
  Client client = make_client(GetParam());
  submit_workload(client.backend(), workload);

  const auto full = client.range(client.keywrite()).run();
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->entries.size(), 37u);

  std::vector<RangeEntry> paged;
  RangeCursor cursor;
  bool resuming = false;
  int pages = 0;
  while (true) {
    auto query = client.range(client.keywrite()).limit(37);
    if (resuming) query.after(cursor);
    const auto page = query.run();
    ASSERT_TRUE(page.ok());
    EXPECT_LE(page->entries.size(), 37u);
    paged.insert(paged.end(), page->entries.begin(), page->entries.end());
    ++pages;
    if (!page->truncated) break;
    ASSERT_TRUE(page->next.has_value());
    cursor = *page->next;
    resuming = true;
    ASSERT_LT(pages, 1000) << "cursor failed to make progress";
  }
  EXPECT_GT(pages, 1);
  EXPECT_TRUE(paged == full->entries) << "page seams diverged";
}

// The committed golden trace replayed into every backend kind yields
// (a) indexed == scan on each backend and (b) the identical indexed
// result across all four — the index analogue of the point-get
// differential above, anchored to a fixture on disk.
TEST(BackendDifferentialTest, GoldenTraceIndexedRangesAgreeOnAllBackends) {
  const auto records = telemetry::read_trace_file(
      std::string(DTA_TEST_DATA_DIR) + "/conformance_600.dtatrace");
  ASSERT_TRUE(records.ok()) << records.status().to_string();
  std::vector<proto::ParsedDta> workload;
  for (const auto& record : records.value()) workload.push_back(record.parsed);

  const auto config =
      conformance_host_config(collector::ThreadMode::kInline, 1);
  std::vector<std::vector<RangeEntry>> indexed_per_backend;
  for (BackendKind kind : testing::all_backend_kinds()) {
    Client client(make_backend(kind, config));
    ASSERT_TRUE(ReplayBackend::replay(records.value(), client.backend()).ok())
        << kind_name(kind);
    expect_indexed_equals_scan(client, workload, kind_name(kind));
    auto indexed = client.range(client.keywrite()).run();
    ASSERT_TRUE(indexed.ok()) << kind_name(kind);
    indexed_per_backend.push_back(std::move(indexed->entries));
  }
  for (std::size_t i = 1; i < indexed_per_backend.size(); ++i) {
    EXPECT_TRUE(indexed_per_backend[0] == indexed_per_backend[i])
        << kind_name(testing::all_backend_kinds()[i])
        << " indexed range diverged from Local";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformanceTest,
    ::testing::Values(BackendKind::kLocal, BackendKind::kCluster,
                      BackendKind::kFabric, BackendKind::kReplay),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return kind_name(info.param);
    });

}  // namespace
}  // namespace dta

// Targeted coverage for paths not exercised elsewhere: the reporter
// facade, the collector facade's event loop, NACK feedback end-to-end,
// hardware-model edge cases, and store corner cases.
#include <gtest/gtest.h>

#include "analysis/hw_model.h"
#include "baseline/ingest.h"
#include "dtalib/fabric.h"
#include "perfmodel/mem_counter.h"
#include "telemetry/records.h"

namespace dta {
namespace {

using common::ByteSpan;
using common::Bytes;
using proto::TelemetryKey;

TelemetryKey key_of(std::uint32_t id) {
  Bytes b;
  common::put_u32(b, id * 2654435761u);
  return TelemetryKey::from(ByteSpan(b));
}

// ----------------------------------------------------------- Reporter

TEST(Reporter, FramesAddressedToTranslatorPort) {
  reporter::ReporterConfig config;
  config.ip = 0x0A000007;
  config.collector_ip = 0x0A0000C0;
  reporter::Reporter rep(config);

  proto::KeyWriteReport r;
  r.key = key_of(1);
  r.redundancy = 1;
  r.data = {1, 2, 3, 4};
  const net::Packet frame = rep.make_frame(r);

  auto udp = net::parse_udp_frame(frame.span());
  ASSERT_TRUE(udp);
  EXPECT_EQ(udp->ip.src_ip, 0x0A000007u);
  EXPECT_EQ(udp->ip.dst_ip, 0x0A0000C0u);
  EXPECT_EQ(udp->udp.dst_port, net::kDtaUdpPort);
  EXPECT_EQ(rep.stats().reports_sent, 1u);
  EXPECT_GT(rep.stats().bytes_sent, 0u);
}

TEST(Reporter, NackFeedbackAccounting) {
  reporter::Reporter rep({});
  proto::NackReport nack;
  nack.dropped_op = proto::PrimitiveOp::kKeyWrite;
  nack.dropped_count = 7;
  rep.handle_nack(nack);
  rep.handle_nack(nack);
  EXPECT_EQ(rep.stats().nacks_received, 2u);
  EXPECT_EQ(rep.stats().reports_dropped_remote, 14u);
}

TEST(Reporter, ImmediateFlagOnWire) {
  reporter::Reporter rep({});
  proto::KeyWriteReport r;
  r.key = key_of(1);
  r.redundancy = 1;
  const net::Packet frame = rep.make_frame(r, /*immediate=*/true);
  auto udp = net::parse_udp_frame(frame.span());
  auto parsed = proto::decode_dta_payload(
      frame.span().subspan(udp->payload_offset, udp->payload_length));
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->header.immediate);
}

// ------------------------------------------------- NACK path end-to-end

TEST(NackPath, TranslatorNackReachesReporterAccounting) {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  config.keywrite = kw;
  config.translator.rate_limiting_enabled = true;
  config.translator.rate_limiter.ops_per_second = 1;
  config.translator.rate_limiter.burst = 2;
  Fabric fabric(config);

  // Route translator NACK frames back into the reporter's accounting.
  fabric.translator().set_nack_sink([&](net::Packet&& frame) {
    auto udp = net::parse_udp_frame(frame.span());
    ASSERT_TRUE(udp);
    auto parsed = proto::decode_dta_payload(
        frame.span().subspan(udp->payload_offset, udp->payload_length));
    ASSERT_TRUE(parsed);
    fabric.reporter(0).handle_nack(
        std::get<proto::NackReport>(parsed->report));
  });

  for (std::uint32_t i = 0; i < 20; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 1;
    common::put_u32(r.data, i);
    fabric.report(r);
  }
  EXPECT_GT(fabric.reporter(0).stats().nacks_received, 0u);
  EXPECT_GT(fabric.reporter(0).stats().reports_dropped_remote, 0u);
}

// ----------------------------------------------------- collector facade

TEST(CollectorFacade, EventQueueDrainsInOrder) {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  config.keywrite = kw;
  Fabric fabric(config);

  for (std::uint32_t i = 0; i < 3; ++i) {
    proto::KeyWriteReport r;
    r.key = key_of(i);
    r.redundancy = 1;
    common::put_u32(r.data, i);
    fabric.report(r, 0, /*immediate=*/true);
  }
  int events = 0;
  while (auto event = fabric.collector().poll_event()) {
    EXPECT_TRUE(event->immediate.has_value());
    ++events;
  }
  EXPECT_EQ(events, 3);
  EXPECT_FALSE(fabric.collector().poll_event());
}

// --------------------------------------------------------- hw model edges

TEST(HwModelEdges, ZeroAndDegenerateInputs) {
  analysis::HwParams hw;
  EXPECT_GT(analysis::kw_collection_rate(hw, 0, 4), 0.0);  // N clamped to 1
  EXPECT_GT(analysis::append_collection_rate(hw, 0, 4), 0.0);
  EXPECT_EQ(analysis::cpu_collection_rate(0, 16), 0.0);
  EXPECT_DOUBLE_EQ(
      analysis::postcarding_paths_rate(hw, 5, 1, 0.0), 0.0);
}

TEST(HwModelEdges, IngressBoundDominatesForHugePayloads) {
  analysis::HwParams hw;
  // 1KB values: the link, not the NIC, must bind.
  const double rate = analysis::kw_collection_rate(hw, 1, 1024);
  EXPECT_LT(rate, 12e6);
  EXPECT_GT(rate, 8e6);  // ~100Gbps / (1061B frame + framing)
}

TEST(HwModelEdges, KiRateMatchesKwShape) {
  analysis::HwParams hw;
  EXPECT_NEAR(analysis::ki_collection_rate(hw, 2),
              analysis::kw_collection_rate(hw, 2, 8), 1e6);
}

// --------------------------------------------------------- perfmodel misc

TEST(PerfModel, MergeAndSummary) {
  perfmodel::MemCounter a, b;
  a.record(perfmodel::Phase::kIo, perfmodel::Access::kSeqLoad, 5);
  b.record(perfmodel::Phase::kIo, perfmodel::Access::kRandStore, 3);
  b.record(perfmodel::Phase::kInsert, perfmodel::Access::kRandLoad, 2);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_EQ(a.total_random(), 5u);
  EXPECT_NE(a.summary().find("I/O"), std::string::npos);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(PerfModel, PhaseAndAccessNames) {
  EXPECT_STREQ(perfmodel::phase_name(perfmodel::Phase::kParse), "Parsing");
  EXPECT_STREQ(perfmodel::access_name(perfmodel::Access::kRandStore),
               "rand-store");
}

// ---------------------------------------------------------- store corners

TEST(StoreCorners, KeyWriteZeroRedundancyQuery) {
  FabricConfig config;
  collector::KeyWriteSetup kw;
  kw.num_slots = 1 << 12;
  config.keywrite = kw;
  Fabric fabric(config);
  const auto result =
      fabric.collector().service().keywrite()->query(key_of(1), 0);
  EXPECT_EQ(result.status, collector::QueryStatus::kNotFound);
}

TEST(StoreCorners, KeyIncrementZeroRedundancyQueryIsZero) {
  FabricConfig config;
  collector::KeyIncrementSetup ki;
  ki.num_slots = 1 << 10;
  config.keyincrement = ki;
  Fabric fabric(config);
  EXPECT_EQ(fabric.collector().service().keyincrement()->query(key_of(1), 0),
            0u);
}

TEST(StoreCorners, EmptyPostcardingStoreAllBlankInvalid) {
  // A zeroed store must never produce a "found" path.
  FabricConfig config;
  collector::PostcardingSetup pc;
  pc.num_chunks = 1 << 10;
  pc.hops = 5;
  for (std::uint32_t v = 0; v < 64; ++v) pc.value_space.push_back(v);
  config.postcarding = pc;
  Fabric fabric(config);
  for (std::uint32_t k = 0; k < 500; ++k) {
    EXPECT_FALSE(
        fabric.collector().service().postcarding()->query(key_of(k), 2)
            .found);
  }
}

// --------------------------------------------------------- record presets

TEST(RecordPresets, IntPathTraceRedundancyDefaultIsTwo) {
  telemetry::IntPathTrace trace;
  trace.flow = {1, 2, 3, 4, 6};
  trace.switch_ids = {9};
  EXPECT_EQ(trace.to_dta().redundancy, 2);
}

TEST(RecordPresets, BaselinePacketsDeterministic) {
  const auto a = baseline::make_packets(100, 50, 7);
  const auto b = baseline::make_packets(100, 50, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto c = baseline::make_packets(100, 50, 8);
  EXPECT_NE(a[0], c[0]);
}

}  // namespace
}  // namespace dta

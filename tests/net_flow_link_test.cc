#include <gtest/gtest.h>

#include <set>

#include "net/flow.h"
#include "net/link.h"

namespace dta::net {
namespace {

TEST(FiveTuple, ByteRoundTrip) {
  FiveTuple t{0xC0A80101, 0x0A000002, 443, 51515, 6};
  const auto bytes = t.to_bytes();
  const FiveTuple back =
      FiveTuple::from_bytes(common::ByteSpan(bytes.data(), bytes.size()));
  EXPECT_EQ(back, t);
}

TEST(FiveTuple, WireSizeIs13) {
  EXPECT_EQ(FiveTuple::kWireSize, 13u);
  EXPECT_EQ(FiveTuple{}.to_bytes().size(), 13u);
}

TEST(FiveTuple, HashSpreadsNearbyTuples) {
  std::set<std::uint64_t> hashes;
  for (std::uint16_t port = 0; port < 1000; ++port) {
    FiveTuple t{0x0A000001, 0x0A000002, port, 80, 6};
    hashes.insert(flow_hash64(t));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(FiveTuple, ToStringReadable) {
  FiveTuple t{0x0A000001, 0x0A000002, 1234, 80, 6};
  EXPECT_EQ(t.to_string(), "10.0.0.1:1234>10.0.0.2:80/6");
}

TEST(Packet, WireBytesIncludesFramingAndMinimum) {
  EXPECT_EQ(wire_bytes(60), 60u + 24u);
  EXPECT_EQ(wire_bytes(10), 60u + 24u);  // padded to the 60B minimum
  EXPECT_EQ(wire_bytes(1500), 1500u + 24u);
}

TEST(Link, DeliversWithSerializationDelay) {
  LinkParams params;
  params.gbps = 100.0;
  params.propagation_ns = 500;
  Link link(params);

  Packet received;
  bool got = false;
  link.set_sink([&](Packet&& p) {
    received = std::move(p);
    got = true;
  });

  Packet pkt(common::Bytes(76, 0));  // 100B on the wire = 8ns at 100G
  ASSERT_TRUE(link.transmit(std::move(pkt), 0));
  ASSERT_TRUE(got);
  EXPECT_EQ(received.arrival_ns, 8u + 500u);
}

TEST(Link, BackToBackPacketsQueue) {
  LinkParams params;
  params.gbps = 100.0;
  params.propagation_ns = 0;
  Link link(params);

  std::vector<common::VirtualNs> arrivals;
  link.set_sink([&](Packet&& p) { arrivals.push_back(p.arrival_ns); });
  for (int i = 0; i < 3; ++i) {
    link.transmit(Packet(common::Bytes(76, 0)), 0);
  }
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], arrivals[2] - arrivals[1]);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST(Link, LossDropsConfiguredFraction) {
  LinkParams params;
  params.loss_rate = 0.25;
  params.seed = 3;
  Link link(params);
  link.set_sink([](Packet&&) {});

  constexpr int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) {
    link.transmit(Packet(common::Bytes(64, 0)), 0);
  }
  EXPECT_NEAR(static_cast<double>(link.dropped()) / kPackets, 0.25, 0.02);
  EXPECT_EQ(link.delivered() + link.dropped(), kPackets);
}

TEST(Link, ZeroLossDeliversEverything) {
  Link link(LinkParams{});
  int count = 0;
  link.set_sink([&](Packet&&) { ++count; });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(link.transmit(Packet(common::Bytes(64, 0)), 0));
  }
  EXPECT_EQ(count, 1000);
}

TEST(Link, ReorderSwapsDelivery) {
  LinkParams params;
  params.reorder_rate = 1.0;  // hold every packet until the next
  Link link(params);
  std::vector<std::uint8_t> order;
  link.set_sink([&](Packet&& p) { order.push_back(p.data[0]); });

  Packet a(common::Bytes{1});
  Packet b(common::Bytes{2});
  link.transmit(std::move(a), 0);
  link.transmit(std::move(b), 0);  // also held... then flushed after
  // With rate 1.0 both are held; nothing delivered yet.
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(link.reordered(), 2u);
}

TEST(Link, AchievedPpsMatchesLineRate) {
  LinkParams params;
  params.gbps = 100.0;
  params.propagation_ns = 0;
  Link link(params);
  link.set_sink([](Packet&&) {});
  for (int i = 0; i < 10000; ++i) {
    link.transmit(Packet(common::Bytes(60, 0)), 0);
  }
  // 84B wire frames at 100G = ~148.8 Mpps.
  EXPECT_NEAR(link.achieved_pps(), 148.8e6, 5e6);
}

}  // namespace
}  // namespace dta::net
